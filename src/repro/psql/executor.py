"""PSQL query execution.

The paper preprocesses PSQL into SQL plus callable spatial operators; we
execute the AST directly against a :class:`~repro.relational.catalog.Database`,
but the moving parts are the same ones the paper names:

- the at-clause drives **direct spatial search** through the picture's
  packed R-tree (window queries, Section 3.1);
- two loc operands trigger **juxtaposition** via a synchronized R-tree
  join (:mod:`repro.rtree.join`);
- a nested ``select`` as an at-operand is a **nested mapping**: the inner
  query binds a set of locations that direct the outer search;
- the where-clause runs conventional predicate evaluation with pictorial
  functions available as "system defined procedures".

MBR semantics: spatial operators compare minimal bounding rectangles, as
R-tree leaf entries do in the paper; when an operand's actual geometry is
a polygon :func:`_refine` additionally applies the exact region test.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro import obs
from repro.geometry.point import Point
from repro.geometry.predicates import OPERATORS
from repro.geometry.rect import Rect
from repro.geometry.region import Region
from repro.geometry.segment import Segment
from repro.psql import ast
from repro.psql.errors import PsqlSemanticError
from repro.psql.functions import FunctionRegistry
from repro.psql.parser import parse
from repro.psql.result import PictorialObject, QueryResult
from repro.relational.catalog import Database, mbr_of_value
from repro.relational.relation import Relation, RowId
from repro.rtree.join import spatial_join

#: One candidate combination of rows: relation name -> (row id, row).
Binding = dict[str, tuple[RowId, dict[str, Any]]]

_SYMMETRIC_OPS = {"overlapping", "disjoined", "intersecting"}
_FLIP = {"covering": "covered-by", "covered-by": "covering"}


class Session:
    """A query session against one database.

    Keeps a :class:`FunctionRegistry` so applications can install their
    own pictorial functions once and use them across queries::

        session = Session(db)
        session.functions.register("runway-heading", my_fn)
        result = session.execute("select city from cities ...")
    """

    def __init__(self, db: Database):
        self.db = db
        self.functions = FunctionRegistry()

    def execute(self, text: str) -> QueryResult:
        """Parse and run one PSQL query."""
        return self.run(parse(text))

    def run(self, query: ast.Query) -> QueryResult:
        """Run an already parsed query."""
        return _Execution(self, query).run()

    def explain_stats(self, text: str,
                      trace_tail: int = 12) -> tuple[QueryResult, str]:
        """Run one query under an isolated observability scope.

        Returns the :class:`QueryResult` plus a formatted report of every
        counter, timer and trace event the query produced — the payload
        behind the REPL's ``EXPLAIN STATS`` prefix.  Instrumentation is
        force-enabled for the duration of the query only; records still
        forward to any enclosing registry, so global totals (when the
        application keeps them) stay consistent.
        """
        query = parse(text)
        with obs.scope(enable=True) as registry:
            result = self.run(query)
        return result, registry.report(trace_tail=trace_tail)


def execute(db: Database, text: str) -> QueryResult:
    """One-shot convenience: ``Session(db).execute(text)``."""
    return Session(db).execute(text)


class _Execution:
    """State for executing a single query."""

    def __init__(self, session: Session, query: ast.Query):
        self.session = session
        self.db = session.db
        self.query = query
        self.relations: dict[str, Relation] = {}
        for name in query.relations:
            if not self.db.has_relation(name):
                raise PsqlSemanticError(f"unknown relation {name!r}")
            self.relations[name] = self.db.relation(name)
        for pic in query.pictures:
            if not self.db.has_picture(pic):
                raise PsqlSemanticError(f"unknown picture {pic!r}")
        self.window: Optional[Rect] = None

    # -- top level ------------------------------------------------------------

    def run(self) -> QueryResult:
        with obs.timer("psql.execute"):
            bindings = self._bindings_from_indexes()
            if bindings is None:
                bindings = self._bindings_from_at()
            if self.query.where is not None:
                candidates = len(bindings)
                bindings = [b for b in bindings
                            if self._truth(self.query.where, b)]
                if obs.ENABLED:
                    reg = obs.active()
                    reg.bump("psql.where.rows_in", candidates)
                    reg.bump("psql.where.rows_out", len(bindings))
            result = self._project(bindings)
        if obs.ENABLED:
            reg = obs.active()
            reg.bump("psql.queries")
            reg.bump("psql.rows_returned", len(result.rows))
        return result

    def _bindings_from_indexes(self) -> Optional[list[Binding]]:
        """Index-assisted scan for pure alphanumeric queries.

        The paper indexes alphanumeric columns "the usual way" (B-trees);
        when a single-relation query has no at-clause but its where
        contains a sargable conjunct on an indexed column, seed the
        bindings from the index instead of a full scan.  The full where
        is re-checked afterwards, so this is purely an access-path
        optimisation.
        """
        if self.query.at is not None or len(self.query.relations) != 1:
            return None
        if self.query.where is None:
            return None
        relation = self.relations[self.query.relations[0]]
        probe = self._find_sargable(self.query.where, relation)
        if probe is None:
            if obs.ENABLED:
                obs.active().bump("psql.plan.relation_scan")
                obs.trace("psql.plan", path="scan",
                          relation=relation.name,
                          reason="no sargable indexed conjunct")
            return None
        column, op, value = probe
        index = relation.index_on(column)
        assert index is not None
        if op == "=":
            rows = relation.lookup(column, value)
        elif op in (">", ">="):
            rows = [(rid, relation.get(rid))
                    for _key, rid in index.range(value, None)]
        else:  # < or <=
            rows = [(rid, relation.get(rid))
                    for _key, rid in index.range(None, value)]
        # Half-open index ranges over- or under-approximate the strict
        # operators; the re-checked where-clause makes the result exact,
        # but a '<=' scan must include the boundary key itself.
        if op == "<=":
            rows += relation.lookup(column, value)
        seen: set[int] = set()
        bindings: list[Binding] = []
        for rid, row in rows:
            if rid not in seen:
                seen.add(rid)
                bindings.append({relation.name: (rid, row)})
        if obs.ENABLED:
            reg = obs.active()
            reg.bump("psql.plan.index_scan")
            reg.bump("psql.index.rows_seeded", len(bindings))
            reg.trace("psql.plan", path="index", relation=relation.name,
                      column=column, op=op, rows=len(bindings))
        return bindings

    def _find_sargable(self, cond: ast.Condition, relation: Relation,
                       ) -> Optional[tuple[str, str, Any]]:
        """The first ``indexed-column <op> literal`` conjunct, if any."""
        if isinstance(cond, ast.And):
            return (self._find_sargable(cond.left, relation)
                    or self._find_sargable(cond.right, relation))
        if not isinstance(cond, ast.Comparison):
            return None
        left, op, right = cond.left, cond.op, cond.right
        flip = {">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "="}
        if isinstance(left, ast.Literal) and isinstance(right,
                                                        ast.ColumnRef):
            left, right = right, left
            op = flip.get(op, op)
        if not (isinstance(left, ast.ColumnRef)
                and isinstance(right, ast.Literal)):
            return None
        if op not in flip:
            return None
        if left.relation not in (None, relation.name):
            return None
        if not relation.has_column(left.column):
            return None
        if relation.index_on(left.column) is None:
            return None
        return left.column, op, right.value

    # -- at-clause evaluation ------------------------------------------------------

    def _bindings_from_at(self) -> list[Binding]:
        at = self.query.at
        if at is None:
            bindings = self._cross_product(self.query.relations)
            if obs.ENABLED:
                obs.active().bump("psql.plan.cross_product")
                obs.active().bump("psql.at.rows_out", len(bindings))
                obs.trace("psql.plan", path="cross-product",
                          relations=list(self.query.relations),
                          rows=len(bindings))
            return bindings

        left, op, right = at.left, at.op, at.right
        left = self._resolve_named_location(left)
        right = self._resolve_named_location(right)
        # Normalise: keep a LocRef on the left where possible.
        if isinstance(left, ast.WindowLiteral) and isinstance(right,
                                                              ast.LocRef):
            left, right = right, left
            op = _FLIP.get(op, op)
        if isinstance(left, ast.SubquerySpec) and isinstance(right,
                                                             ast.LocRef):
            left, right = right, left
            op = _FLIP.get(op, op)

        if isinstance(left, ast.LocRef) and isinstance(right,
                                                       ast.WindowLiteral):
            return self._window_search(left, op, right)
        if isinstance(left, ast.LocRef) and isinstance(right, ast.LocRef):
            return self._juxtaposition(left, op, right)
        if isinstance(left, ast.LocRef) and isinstance(right,
                                                       ast.SubquerySpec):
            return self._nested_mapping(left, op, right)
        raise PsqlSemanticError(
            "unsupported at-clause operand combination "
            f"({type(at.left).__name__} {op} {type(at.right).__name__})")

    def _resolve_named_location(self, spec: ast.AreaSpec) -> ast.AreaSpec:
        """Turn a LocRef naming a predefined location into a window.

        Section 2.2 allows a location "predefined outside the retrieve
        mapping" as an at-clause operand.  An unqualified name that does
        not match any from-clause column is looked up in the catalog's
        named locations.
        """
        if not isinstance(spec, ast.LocRef) or spec.relation is not None:
            return spec
        if any(rel.has_column(spec.column)
               for rel in self.relations.values()):
            return spec
        if self.db.has_location(spec.column):
            area = self.db.location(spec.column)
            cx, cy = area.center()
            return ast.WindowLiteral(cx=cx, dx=area.width / 2.0,
                                     cy=cy, dy=area.height / 2.0)
        return spec

    # -- case 1: direct spatial search against a window ------------------------------

    def _window_search(self, loc: ast.LocRef, op: str,
                       window_lit: ast.WindowLiteral) -> list[Binding]:
        relation = self._loc_relation(loc)
        window = Rect.from_center(Point(window_lit.cx, window_lit.cy),
                                  window_lit.dx, window_lit.dy)
        self.window = window
        tree = self._tree_for(relation.name, loc.column)
        rids = self._search_op(tree, op, window, relation, loc.column)
        if obs.ENABLED:
            reg = obs.active()
            reg.bump("psql.plan.direct_spatial_search")
            reg.bump("psql.at.rows_out", len(rids))
            reg.trace("psql.plan", path="direct-spatial-search",
                      relation=relation.name, op=op, rows=len(rids))
        base = [{relation.name: (rid, relation.get(rid))} for rid in rids]
        others = [r for r in self.query.relations if r != relation.name]
        return self._extend_cross(base, others)

    def _search_op(self, tree: Any, op: str, window: Rect,
                   relation: Relation, column: str) -> list[RowId]:
        """Translate a spatial operator into R-tree searches + refinement."""
        if op == "covered-by":
            rids = tree.search_within(window)
        elif op == "intersecting":
            rids = tree.search(window)
        elif op == "overlapping":
            rids = [rid for rid in tree.search(window)
                    if mbr_of_value(relation.get(rid)[column])
                    .overlaps_interior(window)]
        elif op == "covering":
            rids = [rid for rid in tree.search(window)
                    if mbr_of_value(relation.get(rid)[column])
                    .contains(window)]
        elif op == "disjoined":
            hit = set(tree.search(window))
            rids = [rid for rid, _row in relation.rows() if rid not in hit]
        else:  # pragma: no cover - the parser validates operator names
            raise PsqlSemanticError(f"unknown spatial operator {op!r}")
        return rids

    # -- case 2: juxtaposition ("geographic join") --------------------------------------

    def _juxtaposition(self, left: ast.LocRef, op: str,
                       right: ast.LocRef) -> list[Binding]:
        rel_l = self._loc_relation(left)
        rel_r = self._loc_relation(right)
        if rel_l.name == rel_r.name:
            raise PsqlSemanticError(
                "juxtaposition needs two distinct relations in the at-clause")
        tree_l = self._tree_for(rel_l.name, left.column)
        tree_r = self._tree_for(rel_r.name, right.column)

        if op == "disjoined":
            # Complement of the intersecting join: no lockstep pruning is
            # possible, so qualify every non-intersecting pair.
            intersecting = set(spatial_join(tree_l, tree_r, Rect.intersects))
            pairs = [(ra, rb)
                     for ra, _ in rel_l.rows() for rb, _ in rel_r.rows()
                     if (ra, rb) not in intersecting]
        else:
            predicate = OPERATORS[op]
            pairs = spatial_join(tree_l, tree_r, predicate)
            pairs = [(ra, rb) for ra, rb in pairs
                     if self._refine(op,
                                     rel_l.get(ra)[left.column],
                                     rel_r.get(rb)[right.column])]
        if obs.ENABLED:
            reg = obs.active()
            reg.bump("psql.plan.juxtaposition")
            reg.bump("psql.at.rows_out", len(pairs))
            reg.trace("psql.plan", path="juxtaposition",
                      relations=[rel_l.name, rel_r.name], op=op,
                      pairs=len(pairs))
        base = [{rel_l.name: (ra, rel_l.get(ra)),
                 rel_r.name: (rb, rel_r.get(rb))} for ra, rb in pairs]
        others = [r for r in self.query.relations
                  if r not in (rel_l.name, rel_r.name)]
        return self._extend_cross(base, others)

    # -- case 3: nested mapping -------------------------------------------------------

    def _nested_mapping(self, loc: ast.LocRef, op: str,
                        sub: ast.SubquerySpec) -> list[Binding]:
        inner = self.session.run(sub.query)
        inner_locs = _single_pictorial_column(inner)
        relation = self._loc_relation(loc)
        tree = self._tree_for(relation.name, loc.column)
        rids: set[RowId] = set()
        for value in inner_locs:
            window = mbr_of_value(value)
            for rid in self._search_op(tree, op, window, relation,
                                       loc.column):
                if self._refine(op, relation.get(rid)[loc.column], value):
                    rids.add(rid)
        if obs.ENABLED:
            reg = obs.active()
            reg.bump("psql.plan.nested_mapping")
            reg.bump("psql.at.rows_out", len(rids))
            reg.trace("psql.plan", path="nested-mapping",
                      relation=relation.name, op=op,
                      inner_locations=len(inner_locs), rows=len(rids))
        base = [{relation.name: (rid, relation.get(rid))}
                for rid in sorted(rids)]
        others = [r for r in self.query.relations if r != relation.name]
        return self._extend_cross(base, others)

    # -- refinement beyond MBRs ----------------------------------------------------------

    @staticmethod
    def _refine(op: str, left_value: Any, right_value: Any) -> bool:
        """Exact region tests where geometry allows; MBR semantics otherwise."""
        if op == "covered-by" and isinstance(right_value, Region):
            if isinstance(left_value, Point):
                return right_value.contains_point(left_value)
            return right_value.contains_rect(mbr_of_value(left_value))
        if op == "covering" and isinstance(left_value, Region):
            if isinstance(right_value, Point):
                return left_value.contains_point(right_value)
            return left_value.contains_rect(mbr_of_value(right_value))
        return True

    # -- helpers ------------------------------------------------------------------------

    def _loc_relation(self, loc: ast.LocRef) -> Relation:
        """Resolve which relation a LocRef addresses."""
        if loc.relation is not None:
            if loc.relation not in self.relations:
                raise PsqlSemanticError(
                    f"{loc.relation!r} is not in the from-clause")
            return self.relations[loc.relation]
        candidates = [rel for rel in self.relations.values()
                      if rel.has_column(loc.column)]
        if not candidates:
            raise PsqlSemanticError(
                f"no relation in the from-clause has column {loc.column!r}")
        if len(candidates) > 1:
            raise PsqlSemanticError(
                f"column {loc.column!r} is ambiguous; qualify it "
                f"(e.g. {candidates[0].name}.{loc.column})")
        return candidates[0]

    def _tree_for(self, relation_name: str, column: str) -> Any:
        """The R-tree indexing (relation, column), from the on-clause pictures."""
        pictures = self.query.pictures
        if not pictures:
            raise PsqlSemanticError(
                "an at-clause requires an on-clause naming the picture(s)")
        for pic_name in pictures:
            picture = self.db.picture(pic_name)
            if picture.has_index(relation_name, column):
                return picture.index(relation_name, column)
        raise PsqlSemanticError(
            f"no picture in the on-clause indexes "
            f"{relation_name}.{column}")

    def _cross_product(self, names: Sequence[str]) -> list[Binding]:
        bindings: list[Binding] = [{}]
        return self._extend_cross(bindings, names)

    def _extend_cross(self, bindings: list[Binding],
                      names: Iterable[str]) -> list[Binding]:
        for name in names:
            relation = self.relations[name]
            bindings = [{**b, name: (rid, row)}
                        for b in bindings for rid, row in relation.rows()]
        return bindings

    # -- where-clause evaluation ------------------------------------------------------

    def _truth(self, cond: ast.Condition, binding: Binding) -> bool:
        if isinstance(cond, ast.And):
            return (self._truth(cond.left, binding)
                    and self._truth(cond.right, binding))
        if isinstance(cond, ast.Or):
            return (self._truth(cond.left, binding)
                    or self._truth(cond.right, binding))
        if isinstance(cond, ast.Not):
            return not self._truth(cond.operand, binding)
        assert isinstance(cond, ast.Comparison)
        left = self._value(cond.left, binding)
        right = self._value(cond.right, binding)
        return _compare(cond.op, left, right)

    def _value(self, expr: ast.Expression, binding: Binding) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            return self._column_value(expr, binding)
        if isinstance(expr, ast.FunctionCall):
            fn = self.session.functions.lookup(expr.name)
            args = [self._value(a, binding) for a in expr.args]
            return fn(*args)
        raise PsqlSemanticError(f"cannot evaluate {expr!r}")

    def _column_value(self, ref: ast.ColumnRef, binding: Binding) -> Any:
        if ref.relation is not None:
            if ref.relation not in binding:
                raise PsqlSemanticError(
                    f"{ref.relation!r} is not in the from-clause")
            _rid, row = binding[ref.relation]
            if ref.column not in row:
                raise PsqlSemanticError(
                    f"{ref.relation!r} has no column {ref.column!r}")
            return row[ref.column]
        holders = [name for name, (_rid, row) in binding.items()
                   if ref.column in row]
        if not holders:
            raise PsqlSemanticError(f"unknown column {ref.column!r}")
        if len(holders) > 1:
            raise PsqlSemanticError(
                f"column {ref.column!r} is ambiguous between "
                f"{' and '.join(sorted(holders))}")
        _rid, row = binding[holders[0]]
        return row[ref.column]

    # -- projection -------------------------------------------------------------------

    def _project(self, bindings: list[Binding]) -> QueryResult:
        items = self._expand_select()
        aggregate_flags = [
            isinstance(expr, ast.FunctionCall)
            and self.session.functions.is_aggregate(expr.name)
            for _label, expr in items]
        if any(aggregate_flags):
            return self._project_grouped(items, aggregate_flags, bindings)
        columns = tuple(label for label, _expr in items)
        result = QueryResult(columns=columns, window=self.window)
        for binding in bindings:
            row = tuple(self._value(expr, binding) for _label, expr in items)
            result.rows.append(row)
            self._collect_pictorial(result, binding, row, columns)
        return result

    def _project_grouped(self, items: list[tuple[str, ast.Expression]],
                         aggregate_flags: list[bool],
                         bindings: list[Binding]) -> QueryResult:
        """Aggregate projection (Section 2.1's set-valued functions).

        When the select list contains aggregates, the plain columns act
        as grouping keys and each aggregate is evaluated over its
        argument's values across the group — e.g.
        ``select hwy-name, northest(loc) from highways`` yields the
        northernmost coordinate of each whole highway.
        """
        for (label, expr), is_agg in zip(items, aggregate_flags):
            if is_agg:
                assert isinstance(expr, ast.FunctionCall)
                if len(expr.args) != 1:
                    raise PsqlSemanticError(
                        f"aggregate {expr.name}() takes exactly one "
                        f"argument")
            elif not isinstance(expr, ast.ColumnRef):
                raise PsqlSemanticError(
                    f"select item {label!r} must be a plain column when "
                    f"aggregates are present (it becomes the group key)")

        key_positions = [i for i, is_agg in enumerate(aggregate_flags)
                         if not is_agg]
        groups: dict[tuple, list[Binding]] = {}
        for binding in bindings:
            key = tuple(self._value(items[i][1], binding)
                        for i in key_positions)
            groups.setdefault(key, []).append(binding)

        columns = tuple(label for label, _expr in items)
        result = QueryResult(columns=columns, window=self.window)
        for key, members in groups.items():
            key_iter = iter(key)
            row_values = []
            for (label, expr), is_agg in zip(items, aggregate_flags):
                if is_agg:
                    assert isinstance(expr, ast.FunctionCall)
                    fn = self.session.functions.lookup_aggregate(expr.name)
                    values = [self._value(expr.args[0], b) for b in members]
                    row_values.append(fn(values))
                else:
                    row_values.append(next(key_iter))
            row = tuple(row_values)
            result.rows.append(row)
            self._collect_pictorial(result, members[0], row, columns)
        return result

    def _expand_select(self) -> list[tuple[str, ast.Expression]]:
        multi = len(self.query.relations) > 1
        items: list[tuple[str, ast.Expression]] = []
        for sel in self.query.select:
            if isinstance(sel, ast.Star):
                for name in self.query.relations:
                    for col in self.relations[name].columns:
                        label = f"{name}.{col.name}" if multi else col.name
                        items.append((label,
                                      ast.ColumnRef(column=col.name,
                                                    relation=name)))
            elif isinstance(sel, ast.ColumnRef):
                items.append((str(sel), sel))
            else:
                items.append((str(sel), sel))
        return items

    def _collect_pictorial(self, result: QueryResult, binding: Binding,
                           row: tuple[Any, ...],
                           columns: tuple[str, ...]) -> None:
        """Send selected geometries to the graphical output channel."""
        label = _row_label(row, columns)
        for value in row:
            if isinstance(value, (Point, Segment, Region, Rect)):
                result.pictorial.append(
                    PictorialObject(label=label, geometry=value))


def _row_label(row: tuple[Any, ...], columns: tuple[str, ...]) -> str:
    for value in row:
        if isinstance(value, str):
            return value
    return "(unnamed)" if not columns else str(row[0])


def _compare(op: str, left: Any, right: Any) -> bool:
    try:
        if op == "=":
            return bool(left == right)
        if op == "<>":
            return bool(left != right)
        if op == ">":
            return bool(left > right)
        if op == "<":
            return bool(left < right)
        if op == ">=":
            return bool(left >= right)
        if op == "<=":
            return bool(left <= right)
    except TypeError as exc:
        raise PsqlSemanticError(
            f"cannot compare {type(left).__name__} with "
            f"{type(right).__name__} using {op!r}") from exc
    raise PsqlSemanticError(f"unknown comparison operator {op!r}")


def _single_pictorial_column(result: QueryResult) -> list[Any]:
    """The pictorial values an inner (nested) mapping produced.

    The inner query must expose exactly one pictorial column; that column
    becomes the location binding of the outer mapping.
    """
    pictorial_indexes = set()
    for row in result.rows:
        for i, value in enumerate(row):
            if isinstance(value, (Point, Segment, Region, Rect)):
                pictorial_indexes.add(i)
    if not pictorial_indexes:
        raise PsqlSemanticError(
            "the nested mapping selects no pictorial column to bind")
    if len(pictorial_indexes) > 1:
        raise PsqlSemanticError(
            "the nested mapping selects more than one pictorial column")
    idx = pictorial_indexes.pop()
    return [row[idx] for row in result.rows]
