"""Canonical query text — the cache key for repeated PSQL queries.

Two PSQL strings that tokenize identically should hit the same cache
entry no matter how they were typed: extra whitespace, line breaks,
``--`` comments, keyword capitalisation, digit grouping underscores and
the ASCII ``+-`` spelling of ``±`` are all presentation, not meaning.
:func:`normalize_query` re-renders the token stream in one canonical
spelling, so the query server can use it (together with the database
generation) as a result-cache key.

Normalisation is deliberately **lexical**, not semantic: identifiers
keep their case (relation and column names are data), and numeric
literals keep their literal spelling (``4`` and ``4.0`` stay distinct —
a false cache miss is harmless, a false hit is not).
"""

from __future__ import annotations

from repro.psql.lexer import EOF, STRING, tokenize

__all__ = ["normalize_query"]


def _quote(text: str) -> str:
    """Re-quote a string literal body in canonical form.

    The lexer has no escape sequences, so a string body can never
    contain its own delimiter: prefer single quotes, fall back to double
    quotes for bodies that contain a single quote.
    """
    if "'" not in text:
        return f"'{text}'"
    return f'"{text}"'


def normalize_query(text: str) -> str:
    """The canonical one-line spelling of *text*.

    Queries that differ only in whitespace, comments, keyword case,
    number underscores or the plus-minus spelling normalise to the same
    string; queries with different literals or identifiers do not.

    Raises:
        PsqlSyntaxError: when *text* does not tokenize (normalisation
            never outlives the lexer — callers should treat this exactly
            like a parse error).
    """
    parts: list[str] = []
    for token in tokenize(text):
        if token.kind == EOF:
            break
        if token.kind == STRING:
            parts.append(_quote(token.text))
        else:
            # Keywords arrive lowercased and ``+-`` arrives as ``±``
            # straight from the lexer; everything else is kept verbatim.
            parts.append(token.text)
    return " ".join(parts)
