"""Canonical query text — the cache key for repeated PSQL queries.

Two PSQL strings that tokenize identically should hit the same cache
entry no matter how they were typed: extra whitespace, line breaks,
``--`` comments, keyword capitalisation, digit grouping underscores and
the ASCII ``+-`` spelling of ``±`` are all presentation, not meaning.
:func:`normalize_query` re-renders the token stream in one canonical
spelling, so the query server can use it (together with the database
generation) as a result-cache key.

Normalisation is deliberately **lexical**, not semantic: identifiers
keep their case (relation and column names are data), and numeric
literals keep their literal spelling (``4`` and ``4.0`` stay distinct —
a false cache miss is harmless, a false hit is not).
"""

from __future__ import annotations

from repro.psql.lexer import EOF, NUMBER, STRING, tokenize

__all__ = ["fingerprint_query", "normalize_query"]


def _quote(text: str) -> str:
    """Re-quote a string literal body in canonical form.

    The lexer has no escape sequences, so a string body can never
    contain its own delimiter: prefer single quotes, fall back to double
    quotes for bodies that contain a single quote.
    """
    if "'" not in text:
        return f"'{text}'"
    return f'"{text}"'


def normalize_query(text: str) -> str:
    """The canonical one-line spelling of *text*.

    Queries that differ only in whitespace, comments, keyword case,
    number underscores or the plus-minus spelling normalise to the same
    string; queries with different literals or identifiers do not.

    Raises:
        PsqlSyntaxError: when *text* does not tokenize (normalisation
            never outlives the lexer — callers should treat this exactly
            like a parse error).
    """
    parts: list[str] = []
    for token in tokenize(text):
        if token.kind == EOF:
            break
        if token.kind == STRING:
            parts.append(_quote(token.text))
        else:
            # Keywords arrive lowercased and ``+-`` arrives as ``±``
            # straight from the lexer; everything else is kept verbatim.
            parts.append(token.text)
    return " ".join(parts)


def _canonical_number(text: str) -> str:
    """One spelling per numeric *value*: ``1e2``, ``100.0``, ``100`` → ``100``.

    Integral values render without a fractional part; everything else uses
    ``repr(float)``, the shortest round-tripping spelling.  Values too large
    for an exact float integer (>= 2**53) fall back to the exact ``int``
    rendering when the literal has no point or exponent.
    """
    try:
        return str(int(text))
    except ValueError:
        pass
    value = float(text)
    if value.is_integer() and abs(value) < 2 ** 53:
        return str(int(value))
    return repr(value)


def fingerprint_query(text: str) -> str:
    """The advisor's workload key: :func:`normalize_query` plus value-level
    canonicalisation of numeric literals.

    ``where population > 1e5``, ``where population > 100000.0`` and
    ``where population > 100_000`` are the same *workload* even though the
    result cache rightly keeps them distinct; the query log wants one
    fingerprint per shape-and-value so call counts aggregate.  Signs are
    part of the adjacent ``-`` symbol token and survive untouched, so
    negative coordinates fingerprint consistently too.

    Raises:
        PsqlSyntaxError: when *text* does not tokenize.
    """
    parts: list[str] = []
    for token in tokenize(text):
        if token.kind == EOF:
            break
        if token.kind == STRING:
            parts.append(_quote(token.text))
        elif token.kind == NUMBER:
            parts.append(_canonical_number(token.text))
        else:
            parts.append(token.text)
    return " ".join(parts)
