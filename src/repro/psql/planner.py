"""Cost-based planning for PSQL queries.

The executor used to choose its access path inline while running; this
module splits that decision out.  :func:`plan_query` enumerates the
access paths a query admits — heap scan, a B-tree probe for each
sargable conjunct, the R-tree window / join / nested-mapping paths for
at-clauses — costs each one, and emits a structured :class:`Plan` tree
the executor then follows verbatim.  ``EXPLAIN`` renders the same tree;
``EXPLAIN ANALYZE`` runs it and annotates every node with the rows and
node accesses it actually produced.

The cost unit is *accesses*: one page/node read or one tuple
materialisation counts 1.  Spatial estimates come from the catalog's
:meth:`~repro.relational.catalog.Database.index_summary` statistics
(per-level MBR aggregates, Section 3.1's coverage argument turned into
numbers); alphanumeric selectivities use the classic System-R constants
(``SEL_EQ``/``SEL_RANGE``) since relations keep no value histograms.

Plans are deterministic functions of ``(query AST, data generation)``;
:class:`~repro.psql.executor.Session` caches them under exactly that
key.  Named locations resolve at plan time, so redefining a location
without touching stored data can leave a stale cached plan — bump the
generation when that matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import obs
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.psql import ast
from repro.psql.errors import PsqlSemanticError
from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.stats import IndexSummary, LevelAgg

__all__ = ["Plan", "PlanNode", "merge_shard_plans", "plan_query",
           "sargable_conjuncts", "SEL_EQ", "SEL_RANGE", "SEL_NEQ"]

#: selectivity of ``column = literal`` without histograms (System R)
SEL_EQ = 0.1
#: selectivity of a range comparison (System R's 1/3)
SEL_RANGE = 0.33
#: selectivity of ``column <> literal``
SEL_NEQ = 1.0 - SEL_EQ

_FLIP = {"covering": "covered-by", "covered-by": "covering"}


@dataclass
class PlanNode:
    """One operator of a plan tree.

    ``est_cost``/``est_rows`` are the planner's estimates;
    ``actual_rows``/``actual_accesses`` stay ``None`` until an
    ``EXPLAIN ANALYZE`` execution fills them in.  ``rejected`` lists the
    losing candidates for this operator's slot as ``(label, est_cost)``.
    """

    kind: str
    label: str
    est_cost: float
    est_rows: float
    props: dict[str, Any] = field(default_factory=dict)
    children: list["PlanNode"] = field(default_factory=list)
    rejected: list[tuple[str, float]] = field(default_factory=list)
    actual_rows: Optional[int] = None
    actual_accesses: Optional[int] = None


@dataclass
class Plan:
    """The plan for one query: the node tree plus direct operator refs.

    ``root`` is the projection; ``filter`` the where-clause node (when
    one exists); ``access`` the access-path node the executor dispatches
    on.  All three alias nodes inside ``root``'s tree.
    """

    root: PlanNode
    access: PlanNode
    query: ast.Query
    generation: int
    filter: Optional[PlanNode] = None

    def format(self, analyze: bool = False) -> list[str]:
        """Render the plan as indented ASCII text lines."""
        lines: list[str] = []
        self._format_node(self.root, 0, lines, analyze, top=True)
        return lines

    def _format_node(self, node: PlanNode, depth: int, lines: list[str],
                     analyze: bool, top: bool = False) -> None:
        indent = "  " * depth
        arrow = "" if top else "-> "
        text = (f"{indent}{arrow}{node.label} "
                f"(cost={node.est_cost:.1f} rows={node.est_rows:.1f})")
        if analyze:
            actual_rows = ("?" if node.actual_rows is None
                           else str(node.actual_rows))
            accesses = ("-" if node.actual_accesses is None
                        else str(node.actual_accesses))
            text += f" (actual rows={actual_rows} accesses={accesses})"
        lines.append(text)
        for label, cost in node.rejected:
            lines.append(f"{indent}   rejected: {label} (cost={cost:.1f})")
        for child in node.children:
            self._format_node(child, depth + 1, lines, analyze)


def plan_query(db: Database, query: ast.Query,
               force: Optional[str] = None) -> Plan:
    """Plan one query against the current database state.

    Args:
        db: the catalog the query runs against.
        query: a parsed (and relation/picture-validated) query.
        force: pick the candidate access path whose ``path`` property
            equals this instead of the cheapest one — lets tests and
            benchmarks execute a *rejected* path and measure it.

    Raises:
        PsqlSemanticError: for at-clauses the executor could not run
            either (unresolvable loc refs, missing picture indexes,
            unsupported operand combinations).
        ValueError: when *force* matches no enumerated candidate.
    """
    relations = {name: db.relation(name) for name in query.relations}
    access = _plan_access(db, query, relations, force)
    node = access
    filter_node = None
    if query.where is not None:
        sel = _selectivity(query.where)
        filter_node = PlanNode(
            kind="filter",
            label=f"filter [{_cond_text(query.where)}]",
            est_cost=access.est_cost + access.est_rows,
            est_rows=access.est_rows * sel,
            children=[access])
        node = filter_node
    root = PlanNode(
        kind="project",
        label=f"project [{', '.join(str(s) for s in query.select)}]",
        est_cost=node.est_cost + node.est_rows,
        est_rows=node.est_rows,
        children=[node])
    if obs.ENABLED:
        obs.active().bump("psql.plan.built")
        obs.trace("psql.plan.build", access=access.kind,
                  cost=round(root.est_cost, 1),
                  rows=round(root.est_rows, 1))
    return Plan(root=root, access=access, query=query,
                generation=db.generation, filter=filter_node)


# -- access-path enumeration -------------------------------------------------


def _plan_access(db: Database, query: ast.Query,
                 relations: dict[str, Relation],
                 force: Optional[str]) -> PlanNode:
    if query.at is not None:
        return _plan_at(db, query, relations, force)
    if len(relations) == 1 and query.where is not None:
        relation = relations[query.relations[0]]
        return _plan_single_relation(relation, query.where, force)
    total = 1.0
    for relation in relations.values():
        total *= max(1, len(relation))
    return PlanNode(
        kind="cross-product",
        label=f"cross-product [{', '.join(query.relations)}]",
        est_cost=total, est_rows=total,
        props={"path": "cross-product",
               "relations": list(query.relations)})


def _plan_single_relation(relation: Relation, where: ast.Condition,
                          force: Optional[str]) -> PlanNode:
    """Index probe per sargable conjunct vs. a sequential scan."""
    n = len(relation)
    candidates = [PlanNode(
        kind="seq-scan",
        label=f"seq-scan {relation.name}",
        est_cost=float(n), est_rows=float(n),
        props={"path": "seq-scan", "relation": relation.name})]
    for column, op, value in sargable_conjuncts(where, relation):
        sel = SEL_EQ if op == "=" else SEL_RANGE
        candidates.append(PlanNode(
            kind="index-scan",
            label=f"index-scan {relation.name}.{column} {op} {value!r}",
            est_cost=math.log2(n + 1) + sel * n,
            est_rows=sel * n,
            props={"path": f"index:{column}:{op}",
                   "relation": relation.name, "column": column,
                   "op": op, "value": value}))
    return _choose(candidates, force)


def sargable_conjuncts(cond: ast.Condition, relation: Relation,
                       ) -> list[tuple[str, str, Any]]:
    """Every ``indexed-column <op> literal`` conjunct of *cond*, in
    syntactic order.

    Normalises literal-on-the-left comparisons (``5 < col`` becomes
    ``col > 5``); rejects ``<>`` (a B-tree cannot serve an inequality),
    columns qualified with a different relation, unknown columns and
    columns without an index.  Disjunctions contribute nothing: an index
    probe on one arm of an ``or`` would drop the other arm's rows.
    """
    if isinstance(cond, ast.And):
        return (sargable_conjuncts(cond.left, relation)
                + sargable_conjuncts(cond.right, relation))
    if not isinstance(cond, ast.Comparison):
        return []
    left, op, right = cond.left, cond.op, cond.right
    flip = {">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "="}
    if isinstance(left, ast.Literal) and isinstance(right, ast.ColumnRef):
        left, right = right, left
        op = flip.get(op, op)
    if not (isinstance(left, ast.ColumnRef)
            and isinstance(right, ast.Literal)):
        return []
    if op not in flip:
        return []
    if left.relation not in (None, relation.name):
        return []
    if not relation.has_column(left.column):
        return []
    if relation.index_on(left.column) is None:
        return []
    return [(left.column, op, right.value)]


# -- at-clause planning ------------------------------------------------------


def _plan_at(db: Database, query: ast.Query,
             relations: dict[str, Relation],
             force: Optional[str]) -> PlanNode:
    at = query.at
    assert at is not None
    left = _resolve_named_location(db, at.left, relations)
    right = _resolve_named_location(db, at.right, relations)
    op = at.op
    # Normalise: keep a LocRef on the left where possible.
    if isinstance(left, ast.WindowLiteral) and isinstance(right, ast.LocRef):
        left, right = right, left
        op = _FLIP.get(op, op)
    if isinstance(left, ast.SubquerySpec) and isinstance(right, ast.LocRef):
        left, right = right, left
        op = _FLIP.get(op, op)

    if isinstance(left, ast.LocRef) and isinstance(right,
                                                   ast.WindowLiteral):
        node = _plan_window(db, query, relations, left, op, right, force)
        used = (left.relation or _loc_relation(left, relations).name,)
    elif isinstance(left, ast.LocRef) and isinstance(right, ast.LocRef):
        node = _plan_juxtaposition(db, query, relations, left, op, right,
                                   force)
        used = tuple(node.props["relations"])
    elif isinstance(left, ast.LocRef) and isinstance(right,
                                                     ast.SubquerySpec):
        node = _plan_nested_mapping(db, query, relations, left, op, right)
        used = (node.props["relation"],)
    else:
        raise PsqlSemanticError(
            "unsupported at-clause operand combination "
            f"({type(at.left).__name__} {op} {type(at.right).__name__})")

    others = [r for r in query.relations if r not in used]
    if not others:
        return node
    factor = 1.0
    for name in others:
        factor *= max(1, len(relations[name]))
    return PlanNode(
        kind="extend-cross",
        label=f"extend-cross [{', '.join(others)}]",
        est_cost=node.est_cost + node.est_rows * factor,
        est_rows=node.est_rows * factor,
        props={"relations": others},
        children=[node])


def _plan_window(db: Database, query: ast.Query,
                 relations: dict[str, Relation], loc: ast.LocRef, op: str,
                 window_lit: ast.WindowLiteral,
                 force: Optional[str]) -> PlanNode:
    relation = _loc_relation(loc, relations)
    picture = _picture_for(db, query, relation.name, loc.column)
    summary = db.index_summary(picture, relation.name, loc.column)
    window = Rect.from_center(Point(window_lit.cx, window_lit.cy),
                              window_lit.dx, window_lit.dy)
    n = len(relation)
    accesses = summary.window_accesses(window)
    matching = summary.matching_entries(window)
    rows = _window_rows(op, matching, n)
    # The R-tree path reads `accesses` nodes plus one tuple per match;
    # disjoined additionally scans the relation for the complement.
    rtree_cost = accesses + matching + (n if op == "disjoined" else 0.0)
    base = {"relation": relation.name, "column": loc.column,
            "picture": picture, "op": op, "window": window}
    candidates = [
        PlanNode(
            kind="rtree-window",
            label=(f"rtree-window {picture}/{relation.name}.{loc.column} "
                   f"{op} {_window_text(window_lit)}"),
            est_cost=rtree_cost, est_rows=rows,
            props={"path": "rtree", **base}),
        # A heap scan reads and MBR-tests every tuple: 2 units each.
        PlanNode(
            kind="spatial-filter-scan",
            label=(f"spatial-filter-scan {relation.name}.{loc.column} "
                   f"{op} {_window_text(window_lit)}"),
            est_cost=2.0 * n, est_rows=rows,
            props={"path": "scan", **base}),
    ]
    return _choose(candidates, force)


def _window_rows(op: str, matching: float, n: int) -> float:
    if op == "disjoined":
        return max(0.0, n - matching)
    if op == "covering":
        # Few objects are big enough to contain the whole window.
        return matching * SEL_EQ
    return matching


def _plan_juxtaposition(db: Database, query: ast.Query,
                        relations: dict[str, Relation], left: ast.LocRef,
                        op: str, right: ast.LocRef,
                        force: Optional[str]) -> PlanNode:
    rel_l = _loc_relation(left, relations)
    rel_r = _loc_relation(right, relations)
    if rel_l.name == rel_r.name:
        raise PsqlSemanticError(
            "juxtaposition needs two distinct relations in the at-clause")
    pic_l = _picture_for(db, query, rel_l.name, left.column)
    pic_r = _picture_for(db, query, rel_r.name, right.column)
    sum_l = db.index_summary(pic_l, rel_l.name, left.column)
    sum_r = db.index_summary(pic_r, rel_r.name, right.column)
    in_memory = (hasattr(db.picture(pic_l).index(rel_l.name, left.column),
                         "root")
                 and hasattr(db.picture(pic_r).index(rel_r.name,
                                                     right.column), "root"))

    area = sum_l.universe.area()
    leaf_pairs = _pair_count(sum_l.leaf, sum_r.leaf, area)
    rows = _join_rows(op, leaf_pairs, sum_l.size, sum_r.size)
    lockstep = _lockstep_cost(sum_l, sum_r)
    base = {"relations": [rel_l.name, rel_r.name],
            "columns": [left.column, right.column],
            "pictures": [pic_l, pic_r], "op": op}
    desc = f"{rel_l.name}.{left.column} {op} {rel_r.name}.{right.column}"
    if op == "disjoined":
        # Complement of the intersecting join; no alternative strategy
        # prunes anything, so there is exactly one candidate.
        return PlanNode(
            kind="spatial-join",
            label=f"spatial-join [lockstep-complement] {desc}",
            est_cost=(lockstep + float(sum_l.size) * float(sum_r.size)
                      + rows),
            est_rows=rows,
            props={"path": "lockstep", "strategy": "lockstep-complement",
                   **base})
    candidates = [PlanNode(
        kind="spatial-join",
        label=f"spatial-join [lockstep] {desc}",
        est_cost=lockstep + rows, est_rows=rows,
        props={"path": "lockstep", "strategy": "lockstep", **base})]
    if in_memory:
        for outer, sum_o, sum_i in (("left", sum_l, sum_r),
                                    ("right", sum_r, sum_l)):
            candidates.append(PlanNode(
                kind="spatial-join",
                label=f"spatial-join [nested outer={outer}] {desc}",
                est_cost=_nested_cost(sum_o, sum_i) + rows,
                est_rows=rows,
                props={"path": f"nested-{outer}", "strategy": "nested",
                       "outer": outer, **base}))
    return _choose(candidates, force)


def _join_rows(op: str, leaf_pairs: float, n_l: int, n_r: int) -> float:
    if op == "disjoined":
        return max(0.0, float(n_l) * float(n_r) - leaf_pairs)
    if op in ("covering", "covered-by"):
        return leaf_pairs * SEL_EQ
    return leaf_pairs


def _pair_count(a: LevelAgg, b: LevelAgg, area: float) -> float:
    """E[intersecting pairs] between two uniformly placed rect sets."""
    if area <= 0.0 or not a.count or not b.count:
        return 0.0
    est = (b.count * a.sum_wh + a.sum_w * b.sum_h
           + b.sum_w * a.sum_h + a.count * b.sum_wh) / area
    return min(float(a.count) * float(b.count), est)


def _lockstep_cost(sl: IndexSummary, sr: IndexSummary) -> float:
    """Node reads of the synchronized descent: 2 per visited pair.

    Levels align from the root; when one tree is shallower its leaf
    level holds while the other keeps descending (what ``_join`` does).
    """
    levels_l: tuple[LevelAgg, ...] = sl.internal + (sl.leaf,)
    levels_r: tuple[LevelAgg, ...] = sr.internal + (sr.leaf,)
    area = sl.universe.area()
    cost = 2.0  # the root pair
    for i in range(max(len(sl.internal), len(sr.internal))):
        agg_l = levels_l[min(i, len(levels_l) - 1)]
        agg_r = levels_r[min(i, len(levels_r) - 1)]
        cost += 2.0 * _pair_count(agg_l, agg_r, area)
    return cost


def _nested_cost(outer: IndexSummary, inner: IndexSummary) -> float:
    """Node reads when *outer*'s leaf entries drive window probes."""
    probes = float(outer.size)
    per_probe = inner.expected_window_accesses(outer.leaf.mean_w,
                                               outer.leaf.mean_h)
    return float(outer.node_count) + probes * per_probe


def _plan_nested_mapping(db: Database, query: ast.Query,
                         relations: dict[str, Relation], loc: ast.LocRef,
                         op: str, sub: ast.SubquerySpec) -> PlanNode:
    relation = _loc_relation(loc, relations)
    picture = _picture_for(db, query, relation.name, loc.column)
    summary = db.index_summary(picture, relation.name, loc.column)
    inner_plan = plan_query(db, sub.query)
    inner_rows = inner_plan.root.est_rows
    # Each inner location probes the outer index with its own MBR; its
    # extent is unknown at plan time, so cost a point probe.
    per_probe = summary.expected_window_accesses(0.0, 0.0)
    matches = summary.leaf.expected_intersecting(0.0, 0.0,
                                                 summary.universe)
    rows = min(float(summary.size), inner_rows * max(matches, 1.0))
    node = PlanNode(
        kind="nested-mapping",
        label=(f"nested-mapping {picture}/{relation.name}.{loc.column} "
               f"{op} (subquery)"),
        est_cost=(inner_plan.root.est_cost
                  + inner_rows * (per_probe + matches) + rows),
        est_rows=rows,
        props={"path": "nested-mapping", "relation": relation.name,
               "column": loc.column, "picture": picture, "op": op,
               "_inner_plan": inner_plan},
        children=[inner_plan.root])
    return node


# -- shared resolution helpers ----------------------------------------------


def _resolve_named_location(db: Database, spec: ast.AreaSpec,
                            relations: dict[str, Relation],
                            ) -> ast.AreaSpec:
    """Turn a LocRef naming a predefined location into a window literal."""
    if not isinstance(spec, ast.LocRef) or spec.relation is not None:
        return spec
    if any(rel.has_column(spec.column) for rel in relations.values()):
        return spec
    if db.has_location(spec.column):
        area = db.location(spec.column)
        cx, cy = area.center()
        return ast.WindowLiteral(cx=cx, dx=area.width / 2.0,
                                 cy=cy, dy=area.height / 2.0)
    return spec


def _loc_relation(loc: ast.LocRef,
                  relations: dict[str, Relation]) -> Relation:
    if loc.relation is not None:
        if loc.relation not in relations:
            raise PsqlSemanticError(
                f"{loc.relation!r} is not in the from-clause")
        return relations[loc.relation]
    candidates = [rel for rel in relations.values()
                  if rel.has_column(loc.column)]
    if not candidates:
        raise PsqlSemanticError(
            f"no relation in the from-clause has column {loc.column!r}")
    if len(candidates) > 1:
        raise PsqlSemanticError(
            f"column {loc.column!r} is ambiguous; qualify it "
            f"(e.g. {candidates[0].name}.{loc.column})")
    return candidates[0]


def _picture_for(db: Database, query: ast.Query, relation_name: str,
                 column: str) -> str:
    if not query.pictures:
        raise PsqlSemanticError(
            "an at-clause requires an on-clause naming the picture(s)")
    for pic_name in query.pictures:
        if db.picture(pic_name).has_index(relation_name, column):
            return pic_name
    raise PsqlSemanticError(
        f"no picture in the on-clause indexes {relation_name}.{column}")


def _choose(candidates: list[PlanNode],
            force: Optional[str]) -> PlanNode:
    if force is not None:
        for cand in candidates:
            if cand.props.get("path") == force:
                chosen = cand
                break
        else:
            raise ValueError(
                f"no candidate path {force!r} among "
                f"{[c.props.get('path') for c in candidates]}")
    else:
        chosen = min(candidates, key=lambda c: c.est_cost)
    chosen.rejected = [(c.label, c.est_cost) for c in candidates
                       if c is not chosen]
    return chosen


# -- estimate helpers --------------------------------------------------------


def _selectivity(cond: ast.Condition) -> float:
    if isinstance(cond, ast.And):
        return _selectivity(cond.left) * _selectivity(cond.right)
    if isinstance(cond, ast.Or):
        s1, s2 = _selectivity(cond.left), _selectivity(cond.right)
        return 1.0 - (1.0 - s1) * (1.0 - s2)
    if isinstance(cond, ast.Not):
        return 1.0 - _selectivity(cond.operand)
    assert isinstance(cond, ast.Comparison)
    if cond.op == "=":
        return SEL_EQ
    if cond.op == "<>":
        return SEL_NEQ
    return SEL_RANGE


def _cond_text(cond: ast.Condition) -> str:
    if isinstance(cond, ast.And):
        return f"{_cond_text(cond.left)} and {_cond_text(cond.right)}"
    if isinstance(cond, ast.Or):
        return f"({_cond_text(cond.left)} or {_cond_text(cond.right)})"
    if isinstance(cond, ast.Not):
        return f"not ({_cond_text(cond.operand)})"
    assert isinstance(cond, ast.Comparison)
    return f"{_expr_text(cond.left)} {cond.op} {_expr_text(cond.right)}"


def _expr_text(expr: ast.Expression) -> str:
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    return str(expr)


def _window_text(w: ast.WindowLiteral) -> str:
    return (f"{{{_num(w.cx)} +- {_num(w.dx)}, "
            f"{_num(w.cy)} +- {_num(w.dy)}}}")


def _num(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else str(value)


def merge_shard_plans(labels: "list[str]",
                      plan_rows: "list[list[str]]") -> list[str]:
    """Merge per-shard EXPLAIN outputs into one routed plan listing.

    The cluster router scatters ``EXPLAIN`` to every target shard and
    each answers with the plan *it* would run over its slice; this
    helper stitches those answers into a single one-column listing with
    a header line per shard.  No dedup, no reordering — unlike data
    rows, plan lines are positional, and two shards legitimately pick
    different plans for the same text (their slices have different
    statistics).
    """
    if len(labels) != len(plan_rows):
        raise ValueError("one label per shard plan required")
    merged: list[str] = [f"Scatter-gather over {len(labels)} shard(s)"]
    for label, rows in zip(labels, plan_rows):
        merged.append(f"-- {label}")
        merged.extend(f"  {line}" for line in rows)
    return merged
