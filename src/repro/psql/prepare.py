"""Prepared statements: ``?``-placeholder templates bound per execution.

PSQL has no bind-variable notion in its grammar, so preparation is
textual: the template is split once at its placeholders, and each
``EXECUTE`` splices parameter strings into the gaps and parses the
substituted text.  What makes this worth a verb is what happens *after*
the splice — the substituted statement flows into the session's plan
cache keyed on the parsed AST, so repeated executions with the same
parameters skip planning entirely, and the server layer keys its result
cache on ``(template, params)`` so repeat hits skip even the lexer.

Placeholders are single ``?`` characters outside string literals.  The
lexer's strings (``'...'`` / ``"..."``) have **no** escape sequences, so
quote tracking here is a simple toggle — a ``?`` inside quotes is data,
not a placeholder::

    select city from cities on us-map at loc covered-by {?, ?}
    select name from pois where label = '?'     -- zero placeholders

Parameters are spliced verbatim: they are statement *fragments* (a point
like ``4±4``, a number, a quoted string), not SQL-style typed values.
Binding re-parses the substituted text, so a malformed parameter fails
with the ordinary :class:`~repro.psql.errors.PsqlError` parse error and
cannot corrupt anything — there is no injection surface beyond what the
caller could already send as a plain query.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.psql.errors import PsqlError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.psql import ast

__all__ = ["PreparedStatement", "count_placeholders", "split_template"]

#: Per-statement bound on memoized (params -> parsed AST) entries.
BIND_CACHE_SIZE = 32


def split_template(text: str) -> tuple[str, ...]:
    """Split *text* at each ``?`` placeholder outside string literals.

    Returns the literal segments; a template with *n* placeholders
    yields *n + 1* segments (possibly empty at the ends).
    """
    segments: list[str] = []
    current: list[str] = []
    quote = ""
    for ch in text:
        if quote:
            current.append(ch)
            if ch == quote:
                quote = ""
        elif ch in ("'", '"'):
            quote = ch
            current.append(ch)
        elif ch == "?":
            segments.append("".join(current))
            current = []
        else:
            current.append(ch)
    segments.append("".join(current))
    return tuple(segments)


def count_placeholders(text: str) -> int:
    """How many ``?`` placeholders *text* binds."""
    return len(split_template(text)) - 1


class PreparedStatement:
    """One prepared template plus its per-parameter-set parse cache.

    The cache maps a params tuple to the parsed statement, bounded LRU
    at :data:`BIND_CACHE_SIZE`: a workload cycling a handful of
    parameter sets (the common serving shape) re-parses nothing, while
    an adversarial stream of unique parameters stays bounded.
    """

    __slots__ = ("text", "segments", "nparams", "statement_id", "_cache")

    def __init__(self, text: str, statement_id: int = 0):
        self.text = text
        self.segments = split_template(text)
        self.nparams = len(self.segments) - 1
        self.statement_id = statement_id
        self._cache: OrderedDict[tuple[str, ...], "ast.Statement"] = \
            OrderedDict()

    def substitute(self, params: tuple[str, ...]) -> str:
        """The executable text with *params* spliced into the gaps.

        Raises:
            PsqlError: on a parameter-count mismatch.
        """
        if len(params) != self.nparams:
            raise PsqlError(
                f"prepared statement takes {self.nparams} parameter(s), "
                f"got {len(params)}")
        parts = [self.segments[0]]
        for value, segment in zip(params, self.segments[1:]):
            parts.append(value)
            parts.append(segment)
        return "".join(parts)

    def bind(self, params: tuple[str, ...]) -> tuple["ast.Statement", str]:
        """Parse the substituted statement, memoized per params tuple.

        Returns ``(statement, substituted_text)``.

        Raises:
            PsqlError: on arity mismatch or a parse failure.
        """
        params = tuple(params)
        text = self.substitute(params)
        cached = self._cache.get(params)
        if cached is not None:
            self._cache.move_to_end(params)
            return cached, text
        from repro.psql.parser import parse_statement
        statement = parse_statement(text)
        self._cache[params] = statement
        if len(self._cache) > BIND_CACHE_SIZE:
            self._cache.popitem(last=False)
        return statement, text
