"""Pictorial functions — user-extensible, per the paper's Section 2.1.

"functions defined on pictorial domains are very specific to the
application and ... the language must have capabilities for user-defined
(application-defined) extensions that can be invoked from the pictorial
language."

:data:`DEFAULT_FUNCTIONS` ships the paper's examples (``area``, the
aggregate-flavoured ``northest``) plus a few obvious companions; callers
register their own with :func:`register`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.region import Region
from repro.geometry.segment import Segment
from repro.psql.errors import PsqlSemanticError

PictorialFunction = Callable[..., Any]


def _area(value: Any) -> float:
    """``area(loc)`` — exact polygon area for regions, MBR area otherwise."""
    if isinstance(value, Region):
        return value.area()
    if isinstance(value, Rect):
        return value.area()
    if isinstance(value, Segment):
        return 0.0
    if isinstance(value, Point):
        return 0.0
    raise PsqlSemanticError(f"area() is undefined on {type(value).__name__}")


def _perimeter(value: Any) -> float:
    """``perimeter(loc)`` — MBR perimeter (segment length for segments)."""
    if isinstance(value, Segment):
        return value.length()
    if isinstance(value, Region):
        return value.mbr().perimeter()
    if isinstance(value, Rect):
        return value.perimeter()
    raise PsqlSemanticError(
        f"perimeter() is undefined on {type(value).__name__}")


def _length(value: Any) -> float:
    """``length(loc)`` — Euclidean length of a segment."""
    if isinstance(value, Segment):
        return value.length()
    raise PsqlSemanticError(
        f"length() is undefined on {type(value).__name__}")


def _extreme_coordinate(value: Any, axis: str, sign: float) -> float:
    mbr = _as_mbr(value)
    if axis == "y":
        return mbr.y2 if sign > 0 else mbr.y1
    return mbr.x2 if sign > 0 else mbr.x1


def _as_mbr(value: Any) -> Rect:
    if isinstance(value, Point):
        return Rect.from_point(value)
    if isinstance(value, Segment):
        return value.mbr()
    if isinstance(value, Region):
        return value.mbr()
    if isinstance(value, Rect):
        return value
    raise PsqlSemanticError(
        f"{type(value).__name__} is not a pictorial value")


def _northest(value: Any) -> float:
    """``northest(loc)`` — the paper's example: the northernmost coordinate."""
    return _extreme_coordinate(value, "y", +1.0)


def _southest(value: Any) -> float:
    return _extreme_coordinate(value, "y", -1.0)


def _eastest(value: Any) -> float:
    return _extreme_coordinate(value, "x", +1.0)


def _westest(value: Any) -> float:
    return _extreme_coordinate(value, "x", -1.0)


def _x(value: Any) -> float:
    """``x(loc)`` — the x coordinate of a point (MBR centre otherwise)."""
    if isinstance(value, Point):
        return value.x
    return _as_mbr(value).center().x


def _y(value: Any) -> float:
    if isinstance(value, Point):
        return value.y
    return _as_mbr(value).center().y


def _distance(a: Any, b: Any) -> float:
    """``distance(loc1, loc2)`` — minimum distance between MBRs."""
    return _as_mbr(a).min_distance_to(_as_mbr(b))


DEFAULT_FUNCTIONS: dict[str, PictorialFunction] = {
    "area": _area,
    "perimeter": _perimeter,
    "length": _length,
    "northest": _northest,
    "southest": _southest,
    "eastest": _eastest,
    "westest": _westest,
    "x": _x,
    "y": _y,
    "distance": _distance,
}


# -- aggregates --------------------------------------------------------------
#
# Section 2.1: "An aggregate function on a set of highway segments is
# northest which finds the northest coordinates of any point in a
# highway."  Aggregates receive the *list* of values a group produced.
# When an aggregate appears in a select list the executor groups rows by
# the plain columns and evaluates the aggregate per group; the same
# compass names remain usable as scalars in where-clauses.

AggregateFunction = Callable[[list], Any]


def _require_values(values: list, name: str) -> None:
    if not values:
        raise PsqlSemanticError(f"{name}() over an empty group")


def _agg_mbr(values: list) -> Rect:
    """``mbr(loc)`` — the minimal rectangle bounding a whole group."""
    _require_values(values, "mbr")
    acc = _as_mbr(values[0])
    for v in values[1:]:
        acc = acc.union(_as_mbr(v))
    return acc


def _agg_compass(extreme: Callable[[Any], float],
                 pick: Callable[[list], float], name: str,
                 ) -> AggregateFunction:
    def agg(values: list) -> float:
        _require_values(values, name)
        return pick([extreme(v) for v in values])

    return agg


def _agg_count(values: list) -> int:
    return len(values)


def _agg_sum(values: list) -> float:
    return sum(values)


def _agg_avg(values: list) -> float:
    _require_values(values, "avg")
    return sum(values) / len(values)


def _agg_min(values: list) -> Any:
    _require_values(values, "min")
    return min(values)


def _agg_max(values: list) -> Any:
    _require_values(values, "max")
    return max(values)


DEFAULT_AGGREGATES: dict[str, AggregateFunction] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
    "mbr": _agg_mbr,
    "northest": _agg_compass(_northest, max, "northest"),
    "southest": _agg_compass(_southest, min, "southest"),
    "eastest": _agg_compass(_eastest, max, "eastest"),
    "westest": _agg_compass(_westest, min, "westest"),
}


class FunctionRegistry:
    """A per-session registry of pictorial functions and aggregates."""

    def __init__(self) -> None:
        self._functions = dict(DEFAULT_FUNCTIONS)
        self._aggregates = dict(DEFAULT_AGGREGATES)

    def register(self, name: str, fn: PictorialFunction) -> None:
        """Install an application-defined function (overwrites allowed —
        the paper explicitly wants replaceable special-purpose routines)."""
        self._functions[name.lower()] = fn

    def register_aggregate(self, name: str, fn: AggregateFunction) -> None:
        """Install an application-defined aggregate (takes a value list)."""
        self._aggregates[name.lower()] = fn

    def lookup(self, name: str) -> PictorialFunction:
        """Find a scalar function by (case-insensitive) name.

        Raises:
            PsqlSemanticError: for unknown functions.
        """
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise PsqlSemanticError(
                f"unknown function {name!r}; known: "
                f"{', '.join(sorted(self._functions))}") from None

    def is_aggregate(self, name: str) -> bool:
        return name.lower() in self._aggregates

    def lookup_aggregate(self, name: str) -> AggregateFunction:
        """Find an aggregate by (case-insensitive) name.

        Raises:
            PsqlSemanticError: for unknown aggregates.
        """
        try:
            return self._aggregates[name.lower()]
        except KeyError:
            raise PsqlSemanticError(
                f"unknown aggregate {name!r}; known: "
                f"{', '.join(sorted(self._aggregates))}") from None
