"""repro — Packed R-trees for direct spatial search on pictorial databases.

A full reproduction of Roussopoulos & Leifker, *Direct Spatial Search on
Pictorial Databases Using Packed R-trees* (SIGMOD 1985):

- :mod:`repro.rtree` — the R-tree with Guttman's dynamic algorithms and
  the paper's PACK bulk loader (plus STR/Hilbert/lowx comparators).
- :mod:`repro.geometry` — MBR algebra and PSQL's spatial predicates.
- :mod:`repro.storage` — a paged, buffered, disk-backed R-tree substrate.
- :mod:`repro.relational` — the alphanumeric side: B-tree indexes and an
  in-memory relational engine.
- :mod:`repro.psql` — the PSQL pictorial query language (parser, planner,
  executor) with direct spatial search, juxtaposition and nested mappings.
- :mod:`repro.quadtree` — the quadtree comparator discussed in Section 1.
- :mod:`repro.workloads` / :mod:`repro.experiments` — data generators and
  the harness regenerating every table and figure of the paper.
- :mod:`repro.obs` — the unified observability layer (counters, timers,
  trace events) every subsystem reports into; Table 1's C/O/A columns
  and the REPL's ``EXPLAIN STATS`` read from it.

Quickstart::

    from repro import Rect, pack

    items = [(Rect(x, x, x + 1, x + 1), f"obj{x}") for x in range(100)]
    tree = pack(items, max_entries=4)           # the paper's PACK
    hits = tree.search(Rect(10, 10, 25, 25))    # direct spatial search
"""

from repro import obs
from repro.geometry import Point, Rect, Region, Segment
from repro.rtree import RTree, pack, tree_stats

__version__ = "1.1.0"

__all__ = [
    "Point",
    "RTree",
    "Rect",
    "Region",
    "Segment",
    "__version__",
    "obs",
    "pack",
    "tree_stats",
]
