"""Catalog statistics: per-index MBR summaries for the query planner.

The paper's thesis (Section 3.1) is that coverage and overlap govern
search cost; :mod:`repro.rtree.costmodel` turns that into a per-tree
estimator, but it needs the live tree in memory.  The planner instead
works from an :class:`IndexSummary` — a compact, picklable digest of one
picture index: per-level aggregate extents (enough for the closed-form
Minkowski estimate) plus, for small trees, the exact entry rectangles
(enough for per-node clipping and exact window counts).

Summaries are built by :func:`summarize_index` from an in-memory
:class:`~repro.rtree.tree.RTree`, a
:class:`~repro.storage.disk_rtree.DiskRTree` or a
:class:`~repro.relational.diskindex.DiskSpatialIndex`, and cached per
database generation by :meth:`repro.relational.catalog.Database.index_summary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.geometry.rect import Rect
from repro.rtree.costmodel import node_visit_probability

__all__ = ["LevelAgg", "IndexSummary", "summarize_index"]

#: Keep exact entry rectangles while the whole tree holds at most this
#: many entries; beyond that only the closed-form aggregates survive.
KEEP_RECTS_LIMIT = 4096


@dataclass(frozen=True)
class LevelAgg:
    """Aggregate extents of the entry MBRs at one tree level."""

    count: int
    sum_w: float
    sum_h: float
    sum_wh: float
    #: exact rectangles when the tree was small enough, else ``None``
    rects: Optional[tuple[Rect, ...]] = None

    @property
    def mean_w(self) -> float:
        return self.sum_w / self.count if self.count else 0.0

    @property
    def mean_h(self) -> float:
        return self.sum_h / self.count if self.count else 0.0

    def expected_intersecting(self, window_w: float, window_h: float,
                              universe: Rect) -> float:
        """E[entries intersecting a uniformly placed window].

        With exact rectangles this sums the per-entry clipped Minkowski
        probability; otherwise it falls back to the unclipped closed
        form ``(Σwh + w·Σh + h·Σw + n·w·h) / area``, capped at *count*.
        """
        if self.rects is not None:
            return sum(node_visit_probability(r, window_w, window_h,
                                              universe)
                       for r in self.rects)
        area = universe.area()
        if area <= 0.0:
            # Degenerate universe: every stored entry coincides with it,
            # so any window that intersects the universe hits them all.
            return float(self.count)
        est = (self.sum_wh + window_w * self.sum_h
               + window_h * self.sum_w
               + self.count * window_w * window_h) / area
        return min(float(self.count), est)

    def count_intersecting(self, window: Rect) -> Optional[int]:
        """Exact intersection count for *window*, or ``None`` without
        rectangles."""
        if self.rects is None:
            return None
        return sum(1 for r in self.rects if r.intersects(window))


@dataclass(frozen=True)
class IndexSummary:
    """A planner-facing digest of one picture R-tree.

    ``internal`` holds one :class:`LevelAgg` per internal-entry level
    (children of the root first); ``leaf`` aggregates the data-entry
    MBRs.  ``size``/``depth``/``node_count`` mirror the tree's Table-1
    columns at the time the summary was taken.
    """

    size: int
    depth: int
    node_count: int
    universe: Rect
    internal: tuple[LevelAgg, ...]
    leaf: LevelAgg

    # -- node-access estimates (the planner's cost unit) --------------------

    def expected_window_accesses(self, window_w: float,
                                 window_h: float) -> float:
        """E[nodes read] for a uniformly placed ``w x h`` window query.

        The root always costs one read; every deeper node is read with
        its parent entry's clipped Minkowski probability — exactly the
        :func:`repro.rtree.costmodel.expected_window_accesses` model,
        evaluated from the summary instead of the live tree.
        """
        return 1.0 + sum(
            agg.expected_intersecting(window_w, window_h, self.universe)
            for agg in self.internal)

    def window_accesses(self, window: Rect) -> float:
        """Estimated nodes read by a search with this *specific* window.

        Exact (a node is read iff its MBR intersects the window) when
        the summary kept rectangles; otherwise the uniform-placement
        expectation for a window of the same extent.
        """
        total = 1.0
        for agg in self.internal:
            exact = agg.count_intersecting(window)
            if exact is not None:
                total += exact
            else:
                total += agg.expected_intersecting(
                    window.width, window.height, self.universe)
        return total

    def matching_entries(self, window: Rect) -> float:
        """Estimated data entries whose MBR intersects *window*."""
        exact = self.leaf.count_intersecting(window)
        if exact is not None:
            return float(exact)
        return self.leaf.expected_intersecting(window.width, window.height,
                                               self.universe)


def summarize_index(index: Any, universe: Rect,
                    keep_rects_limit: int = KEEP_RECTS_LIMIT,
                    ) -> IndexSummary:
    """Build an :class:`IndexSummary` for any picture-index flavour.

    Accepts an in-memory :class:`~repro.rtree.tree.RTree` (anything with
    ``.root``), or a disk-backed tree exposing ``entry_rects()``
    (:class:`~repro.storage.disk_rtree.DiskRTree` and the
    :class:`~repro.relational.diskindex.DiskSpatialIndex` wrapper).
    """
    if hasattr(index, "root"):
        entries = _memory_entry_rects(index)
    else:
        entries = index.entry_rects()
    per_level: dict[int, list[Rect]] = {}
    leaf_rects: list[Rect] = []
    node_count = 1
    for level, is_leaf_entry, rect in entries:
        if is_leaf_entry:
            leaf_rects.append(rect)
        else:
            per_level.setdefault(level, []).append(rect)
            node_count += 1
    depth = (max(per_level) if per_level else 0)
    keep = (len(leaf_rects) + sum(len(v) for v in per_level.values())
            <= keep_rects_limit)
    internal = tuple(_agg(per_level[level], keep)
                     for level in sorted(per_level))
    return IndexSummary(size=len(leaf_rects), depth=depth,
                        node_count=node_count, universe=universe,
                        internal=internal, leaf=_agg(leaf_rects, keep))


def _agg(rects: list[Rect], keep: bool) -> LevelAgg:
    return LevelAgg(
        count=len(rects),
        sum_w=sum(r.width for r in rects),
        sum_h=sum(r.height for r in rects),
        sum_wh=sum(r.width * r.height for r in rects),
        rects=tuple(rects) if keep else None)


def _memory_entry_rects(tree: Any,
                        ) -> Iterator[tuple[int, bool, Rect]]:
    """``(level, is_leaf_entry, rect)`` for every entry of an RTree.

    Internal entries carry the level of the *child node* they bound
    (1 = children of the root), matching the cost model's convention
    that a node is read when the search descends through its parent
    entry.
    """
    frontier = [tree.root]
    level = 1
    while frontier:
        nxt = []
        for node in frontier:
            for e in node.entries:
                if node.is_leaf:
                    yield level, True, e.rect
                else:
                    yield level, False, e.rect
                    assert e.child is not None
                    nxt.append(e.child)
        frontier = nxt
        level += 1
