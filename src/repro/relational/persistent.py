"""Disk-backed relations: heap-file rows plus rebuilt indexes.

:class:`PersistentRelation` stores its tuples in a slotted-page
:class:`~repro.storage.heapfile.HeapFile` and keeps the same schema and
API surface as the in-memory :class:`~repro.relational.relation.Relation`
where it matters (insert/get/delete/rows/scan).  Secondary B-tree indexes
and the R-tree over a pictorial column are rebuilt on open — the paper's
databases are "not update intensive but rather static", so rebuilding
*indexes* at startup stays cheap and simple.

Row data itself no longer relies on that bargain: by default every
mutation is committed through a page-level write-ahead log
(:mod:`repro.storage.wal`), so once :meth:`PersistentRelation.insert` or
:meth:`~PersistentRelation.delete` returns, the change survives
``kill -9``.  Opening a relation whose previous owner crashed replays the
committed tail automatically; :attr:`PersistentRelation.recovered`
reports when that happened so catalogs can invalidate anything keyed on
the data generation.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.geometry.rect import Rect
from repro.relational.btree import BTree
from repro.relational.catalog import mbr_of_value
from repro.relational.relation import Column, SchemaError, _TYPE_MAP
from repro.relational.rowcodec import decode_row, encode_row
from repro.rtree.packing import pack
from repro.rtree.tree import RTree
from repro.storage.heapfile import HeapFile, RowAddress


class PersistentRelation:
    """A relation whose rows live on disk.

    Row identifiers are :class:`RowAddress` values (page, slot) — stable
    for the row's lifetime, exactly like the in-memory relation's heap
    positions.

    Args:
        name: relation name.
        columns: the schema.
        path: heap-file path (created when absent; reopened otherwise —
            existing rows must match the schema).
        page_size / buffer_capacity: storage knobs.
        durable: when True (default) a write-ahead log at ``path + ".wal"``
            makes every insert/delete crash-safe before it returns; set
            False for scratch relations that prefer raw speed.
        wal_sync: ``"fsync"`` (default) or ``"none"`` — the latter keeps
            atomicity against process death but not power loss.
    """

    def __init__(self, name: str, columns: list[Column], path: str,
                 page_size: int = 4096, buffer_capacity: int = 64,
                 durable: bool = True, wal_sync: str = "fsync",
                 checkpoint_bytes: int = 4 * 1024 * 1024):
        self.name = name
        self.columns = tuple(columns)
        if not self.columns:
            raise SchemaError(f"relation {name!r} needs at least one column")
        self._by_name = {c.name: c for c in self.columns}
        if len(self._by_name) != len(self.columns):
            raise SchemaError(f"duplicate column names in {name!r}")
        self.durable = durable
        self._heap = HeapFile(path, page_size=page_size,
                              buffer_capacity=buffer_capacity,
                              wal_path=path + ".wal" if durable else None,
                              wal_sync=wal_sync,
                              checkpoint_bytes=checkpoint_bytes)
        self._indexes: dict[str, BTree] = {}

    @property
    def recovered(self) -> bool:
        """True when opening replayed committed WAL work after a crash."""
        return self._heap.recovered

    # -- schema ---------------------------------------------------------------

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def pictorial_columns(self) -> list[Column]:
        """Columns holding spatial objects (point/segment/region)."""
        return [c for c in self.columns if c.is_pictorial]

    # -- rows -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    def insert(self, row: dict[str, Any]) -> RowAddress:
        """Schema-check, encode and store a row.

        In durable mode the heap pages are WAL-committed before this
        returns: the row's acknowledgement *is* its durability.
        """
        self._check_row(row)
        addr = self._heap.insert(encode_row(row))
        if self.durable:
            self._heap.commit()
        for col, index in self._indexes.items():
            index.insert(row[col], addr)
        return addr

    def get(self, addr: RowAddress) -> dict[str, Any]:
        """Fetch and decode one row.

        Raises:
            KeyError: for deleted or invalid addresses.
        """
        from repro.storage.heapfile import HeapFileError
        try:
            return decode_row(self._heap.get(addr))
        except HeapFileError as exc:
            raise KeyError(str(exc)) from exc

    def delete(self, addr: RowAddress) -> None:
        """Remove one row and its index entries (durable on return)."""
        row = self.get(addr)
        for col, index in self._indexes.items():
            index.delete(row[col], addr)
        self._heap.delete(addr)
        if self.durable:
            self._heap.commit()

    def commit(self) -> None:
        """Explicitly commit staged heap pages (for non-durable batches)."""
        self._heap.commit()

    def rows(self) -> Iterator[tuple[RowAddress, dict[str, Any]]]:
        """All live rows, heap order."""
        for addr, data in self._heap.scan():
            yield addr, decode_row(data)

    def scan(self, predicate: Callable[[dict[str, Any]], bool],
             ) -> Iterator[tuple[RowAddress, dict[str, Any]]]:
        return ((addr, row) for addr, row in self.rows() if predicate(row))

    # -- indexes ---------------------------------------------------------------

    def create_index(self, column: str, order: int = 32) -> BTree:
        """Build a B-tree over an alphanumeric column (in memory)."""
        col = self.column(column)
        if col.is_pictorial:
            raise SchemaError(
                f"column {column!r} is pictorial; build a spatial index "
                f"with build_spatial_index() instead")
        index = BTree(order=order)
        for addr, row in self.rows():
            index.insert(row[column], addr)
        self._indexes[column] = index
        return index

    def lookup(self, column: str, value: Any,
               ) -> list[tuple[RowAddress, dict[str, Any]]]:
        index = self._indexes.get(column)
        if index is not None:
            return [(addr, self.get(addr)) for addr in index.search(value)]
        self.column(column)
        return [(addr, row) for addr, row in self.rows()
                if row[column] == value]

    def build_spatial_index(self, column: str = "loc",
                            max_entries: int = 16,
                            method: str = "nn") -> RTree:
        """PACK an in-memory R-tree over a pictorial column.

        Leaf oids are :class:`RowAddress` values, mirroring how the
        catalog's picture indexes reference in-memory rows.
        """
        col = self.column(column)
        if not col.is_pictorial:
            raise SchemaError(f"column {column!r} is not pictorial")
        items: list[tuple[Rect, Any]] = [
            (mbr_of_value(row[column]), addr) for addr, row in self.rows()]
        return pack(items, max_entries=max_entries, method=method)

    # -- internals ----------------------------------------------------------------

    def _check_row(self, row: dict[str, Any]) -> None:
        extra = set(row) - set(self._by_name)
        if extra:
            raise SchemaError(
                f"row has columns {sorted(extra)} not in {self.name!r}")
        for col in self.columns:
            if col.name not in row:
                raise SchemaError(
                    f"row is missing column {col.name!r} of {self.name!r}")
            if not isinstance(row[col.name], _TYPE_MAP[col.type]):
                raise SchemaError(
                    f"column {col.name!r} expects {col.type}, got "
                    f"{type(row[col.name]).__name__}")

    # -- lifecycle -------------------------------------------------------------------

    def flush(self) -> None:
        self._heap.flush()

    def close(self) -> None:
        self._heap.close()

    def __enter__(self) -> "PersistentRelation":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
