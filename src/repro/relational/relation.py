"""Relations: schema-checked heap storage with secondary indexes.

A relation in PSQL's data model mixes alphanumeric columns (indexed "the
usual way" with B-trees) and pictorial columns of type point / segment /
region, whose values are indexed externally by R-trees through the
``loc`` pointer machinery (see :mod:`repro.relational.catalog`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.geometry.point import Point
from repro.geometry.region import Region
from repro.geometry.segment import Segment
from repro.relational.btree import BTree

#: Row identifier: position in the heap.  Stable for the row's lifetime —
#: these are the "backward (unique) identifiers" PSQL stores in R-tree
#: leaves to get from picture space back to tuples.
RowId = int

#: column type name -> accepted Python classes
_TYPE_MAP: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "point": (Point,),
    "segment": (Segment,),
    "region": (Region,),
}

#: Pictorial column types (indexed by R-trees, not B-trees).
PICTORIAL_TYPES = frozenset({"point", "segment", "region"})


class SchemaError(Exception):
    """A row or operation disagrees with the relation's schema."""


@dataclass(frozen=True)
class Column:
    """One column of a relation schema."""

    name: str
    type: str

    def __post_init__(self) -> None:
        if self.type not in _TYPE_MAP:
            raise SchemaError(
                f"unknown column type {self.type!r}; "
                f"choose from {sorted(_TYPE_MAP)}")

    @property
    def is_pictorial(self) -> bool:
        return self.type in PICTORIAL_TYPES


class Relation:
    """A named relation with heap rows and optional B-tree indexes.

    Rows are dictionaries keyed by column name.  Deleted rows leave
    tombstones so row ids stay stable (important because R-tree leaves
    reference rows by id).

    Example::

        cities = Relation("cities", [
            Column("city", "str"), Column("state", "str"),
            Column("population", "int"), Column("loc", "point"),
        ])
        rid = cities.insert({"city": "Springfield", "state": "Avalon",
                             "population": 450_000, "loc": Point(1, 2)})
    """

    def __init__(self, name: str, columns: Iterable[Column]):
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        if not self.columns:
            raise SchemaError(f"relation {name!r} needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {name!r}")
        self._by_name = {c.name: c for c in self.columns}
        self._rows: list[Optional[dict[str, Any]]] = []
        self._indexes: dict[str, BTree] = {}
        self._live = 0

    # -- schema -------------------------------------------------------------

    def column(self, name: str) -> Column:
        """The column named *name*.

        Raises:
            SchemaError: when the relation has no such column.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def pictorial_columns(self) -> list[Column]:
        """Columns holding spatial objects (point/segment/region)."""
        return [c for c in self.columns if c.is_pictorial]

    # -- rows ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    def insert(self, row: dict[str, Any]) -> RowId:
        """Append a schema-checked row; returns its stable row id."""
        self._check_row(row)
        rid = len(self._rows)
        stored = dict(row)
        self._rows.append(stored)
        self._live += 1
        for col, index in self._indexes.items():
            index.insert(stored[col], rid)
        return rid

    def get(self, rid: RowId) -> dict[str, Any]:
        """The row stored under *rid*.

        Raises:
            KeyError: for out-of-range or deleted row ids.
        """
        row = self._rows[rid] if 0 <= rid < len(self._rows) else None
        if row is None:
            raise KeyError(f"row {rid} does not exist in {self.name!r}")
        return row

    def delete(self, rid: RowId) -> None:
        """Tombstone the row, removing it from all indexes.

        Raises:
            KeyError: when the row does not exist.
        """
        row = self.get(rid)
        for col, index in self._indexes.items():
            index.delete(row[col], rid)
        self._rows[rid] = None
        self._live -= 1

    def update(self, rid: RowId, changes: dict[str, Any]) -> None:
        """Apply *changes* to a row, keeping indexes consistent."""
        row = self.get(rid)
        merged = {**row, **changes}
        self._check_row(merged)
        for col, index in self._indexes.items():
            if col in changes and changes[col] != row[col]:
                index.delete(row[col], rid)
                index.insert(changes[col], rid)
        row.update(changes)

    def rows(self) -> Iterator[tuple[RowId, dict[str, Any]]]:
        """All live rows as (row id, row) pairs, heap order."""
        for rid, row in enumerate(self._rows):
            if row is not None:
                yield rid, row

    def scan(self, predicate: Callable[[dict[str, Any]], bool],
             ) -> Iterator[tuple[RowId, dict[str, Any]]]:
        """Live rows satisfying *predicate*."""
        return ((rid, row) for rid, row in self.rows() if predicate(row))

    # -- indexes ----------------------------------------------------------------

    def create_index(self, column: str, order: int = 32) -> BTree:
        """Build (or rebuild) a B-tree index on an alphanumeric column.

        Raises:
            SchemaError: for pictorial columns — those are R-tree
                territory (Section 2.1 of the paper).
        """
        col = self.column(column)
        if col.is_pictorial:
            raise SchemaError(
                f"column {column!r} is pictorial; index it with an R-tree "
                f"through the catalog, not a B-tree")
        index = BTree(order=order)
        for rid, row in self.rows():
            index.insert(row[column], rid)
        self._indexes[column] = index
        return index

    def index_on(self, column: str) -> Optional[BTree]:
        """The index on *column*, if one exists."""
        return self._indexes.get(column)

    def lookup(self, column: str, value: Any,
               ) -> list[tuple[RowId, dict[str, Any]]]:
        """Equality lookup, via the index when present, else a scan."""
        index = self._indexes.get(column)
        if index is not None:
            return [(rid, self.get(rid)) for rid in index.search(value)]
        self.column(column)  # raise SchemaError for unknown columns
        return [(rid, row) for rid, row in self.rows()
                if row[column] == value]

    # -- internals -----------------------------------------------------------

    def _check_row(self, row: dict[str, Any]) -> None:
        extra = set(row) - set(self._by_name)
        if extra:
            raise SchemaError(
                f"row has columns {sorted(extra)} not in {self.name!r}")
        for col in self.columns:
            if col.name not in row:
                raise SchemaError(
                    f"row is missing column {col.name!r} of {self.name!r}")
            value = row[col.name]
            if not isinstance(value, _TYPE_MAP[col.type]):
                raise SchemaError(
                    f"column {col.name!r} expects {col.type}, got "
                    f"{type(value).__name__}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.name}:{c.type}" for c in self.columns)
        return f"Relation({self.name!r}, [{cols}], rows={self._live})"
