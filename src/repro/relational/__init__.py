"""The alphanumeric substrate: B-tree indexes and an in-memory relational engine.

The paper integrates pictures with a conventional relational system: "The
relation columns that correspond to alphanumeric domains are indexed the
usual way" (Section 2.1) — i.e. with B-trees [Bayer & McCreight 1972] —
while pictorial columns are indexed with R-trees.  This package supplies
that conventional side:

- :class:`~repro.relational.btree.BTree` — an order-configurable B+-tree
  with duplicate support and range scans.
- :class:`~repro.relational.relation.Relation` — heap-stored tuples with
  a schema, secondary B-tree indexes and predicate scans.
- :class:`~repro.relational.catalog.Database` — the catalog binding
  relations to pictures and their R-tree spatial indexes (the ``loc``
  machinery of PSQL).
"""

from repro.relational.btree import BTree
from repro.relational.relation import Column, Relation, RowId, SchemaError
from repro.relational.catalog import Database, Picture
from repro.relational.persistent import PersistentRelation
from repro.relational.rowcodec import decode_row, encode_row

__all__ = [
    "BTree",
    "Column",
    "Database",
    "PersistentRelation",
    "Picture",
    "Relation",
    "RowId",
    "SchemaError",
    "decode_row",
    "encode_row",
]
