"""Row (de)serialisation for disk-backed relations.

Rows are dictionaries mixing alphanumeric values with pictorial domain
objects; JSON carries the alphanumerics and pictorial values travel as
tagged structures::

    Point   -> {"$point":   [x, y]}
    Segment -> {"$segment": [x1, y1, x2, y2]}
    Region  -> {"$region":  [[x, y], ...]}
    Rect    -> {"$rect":    [x1, y1, x2, y2]}
"""

from __future__ import annotations

import json
from typing import Any

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.region import Region
from repro.geometry.segment import Segment


def encode_row(row: dict[str, Any]) -> bytes:
    """Serialise a row dictionary to UTF-8 JSON bytes."""
    return json.dumps({k: _encode(v) for k, v in row.items()},
                      separators=(",", ":")).encode("utf-8")


def decode_row(data: bytes) -> dict[str, Any]:
    """Inverse of :func:`encode_row`.

    Raises:
        ValueError: for malformed payloads.
    """
    try:
        raw = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed row payload: {exc}") from exc
    if not isinstance(raw, dict):
        raise ValueError("row payload must decode to an object")
    return {k: _decode(v) for k, v in raw.items()}


def _encode(value: Any) -> Any:
    if isinstance(value, Point):
        return {"$point": [value.x, value.y]}
    if isinstance(value, Segment):
        return {"$segment": [value.start.x, value.start.y,
                             value.end.x, value.end.y]}
    if isinstance(value, Region):
        return {"$region": [[p.x, p.y] for p in value.vertices]}
    if isinstance(value, Rect):
        return {"$rect": [value.x1, value.y1, value.x2, value.y2]}
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, dict) and len(value) == 1:
        ((tag, body),) = value.items()
        if tag == "$point":
            x, y = body
            return Point(float(x), float(y))
        if tag == "$segment":
            x1, y1, x2, y2 = body
            return Segment(Point(float(x1), float(y1)),
                           Point(float(x2), float(y2)))
        if tag == "$region":
            return Region([Point(float(x), float(y)) for x, y in body])
        if tag == "$rect":
            x1, y1, x2, y2 = body
            return Rect(float(x1), float(y1), float(x2), float(y2))
    return value
