"""A disk-backed picture index: a DiskRTree behind one lock.

:class:`~repro.relational.catalog.Picture` normally holds in-memory
packed :class:`~repro.rtree.tree.RTree` indexes.  For the roadmap's
production-scale shape the index must live on disk and be rebuildable
*offline* — the server's ``REPACK`` verb streams the relation back
through :mod:`repro.rtree.bulkload` into a fresh file and atomically
swaps it under the live tree.

The wrapper exists for exactly that swap: queries and the rebuild race
on the same :class:`~repro.storage.disk_rtree.DiskRTree` object, and the
swap closes and reopens the pager.  Serialising every operation through
one re-entrant lock makes the swap atomic with respect to searches —
a searcher sees the old tree or the new tree, never a half-closed pager.

Juxtaposition (the synchronized-descent spatial join) still requires
in-memory indexes; a disk-backed index supports the direct spatial
search, point and k-NN paths plus the Section 3.4 update path.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.bulkload import BulkLoadStats, bulk_load_stream, \
    rebuild_tree_file
from repro.storage.disk_rtree import DiskRTree

__all__ = ["DiskSpatialIndex"]


class DiskSpatialIndex:
    """A thread-safe, rebuildable disk R-tree with the picture-index API.

    Args:
        path: backing file for the tree.
        max_entries: node fanout (``None`` = fill the page).
        tree_kwargs: forwarded to
            :class:`~repro.storage.disk_rtree.DiskRTree` — ``page_size``,
            ``buffer_capacity``, ``wal_path`` and friends.
    """

    def __init__(self, path: str, max_entries: Optional[int] = None,
                 **tree_kwargs):
        self._lock = threading.RLock()
        self._tree = DiskRTree(path, max_entries=max_entries, **tree_kwargs)

    # -- identity -----------------------------------------------------------

    @property
    def path(self) -> str:
        return self._tree.pager.path

    @property
    def max_entries(self) -> int:
        return self._tree.max_entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._tree)

    # -- the query API the executor drives ----------------------------------

    def search(self, window: Rect, **kwargs) -> list[int]:
        with self._lock:
            return self._tree.search(window, **kwargs)

    def search_within(self, window: Rect, **kwargs) -> list[int]:
        with self._lock:
            return self._tree.search_within(window, **kwargs)

    def point_query(self, point: Point, **kwargs) -> list[int]:
        with self._lock:
            return self._tree.point_query(point, **kwargs)

    def knn(self, point: Point, k: int = 1, **kwargs):
        with self._lock:
            return self._tree.knn(point, k, **kwargs)

    def entry_rects(self) -> list[tuple[int, bool, Rect]]:
        """Snapshot of ``(level, is_leaf_entry, rect)`` for the planner."""
        with self._lock:
            return self._tree.entry_rects()

    # -- the Section 3.4 update path -----------------------------------------

    def insert(self, rect: Rect, oid: int) -> None:
        with self._lock:
            self._tree.insert(rect, oid)

    def delete(self, rect: Rect, oid: int) -> bool:
        with self._lock:
            return self._tree.delete(rect, oid)

    # -- bulk loading and offline rebuild ------------------------------------

    def load(self, items: Iterable[tuple[Rect, int]], *,
             method: str = "hilbert", run_size: int = 100_000,
             workers: int = 0,
             tmp_dir: Optional[str] = None) -> BulkLoadStats:
        """Out-of-core bulk load into the (empty) tree."""
        with self._lock:
            return bulk_load_stream(self._tree, items, method=method,
                                    run_size=run_size, workers=workers,
                                    tmp_dir=tmp_dir)

    def rebuild(self, items: Iterable[tuple[Rect, int]], *,
                method: str = "hilbert", run_size: int = 100_000,
                workers: int = 0,
                tmp_dir: Optional[str] = None) -> BulkLoadStats:
        """Rebuild from *items* into a fresh file and atomically swap it.

        The lock is held for the duration: concurrent searches block and
        then run against the freshly swapped tree.  A crash mid-rebuild
        leaves the old file intact (see
        :func:`repro.rtree.bulkload.swap_tree_file`).
        """
        with self._lock:
            return rebuild_tree_file(self._tree, items, method=method,
                                     run_size=run_size, workers=workers,
                                     tmp_dir=tmp_dir)

    def local_repack(self, region: Optional[Rect] = None, *,
                     method: str = "hilbert", distance: str = "center"):
        """Incrementally re-PACK the subtree covering *region*.

        The lock is held throughout, so searches either see the old
        subtree or the spliced-in packed one.  A ``region`` of ``None``
        (or one straddling top-level partitions) falls through to the
        whole-tree atomic-swap rebuild.  Dirty pages are flushed before
        returning so the splice is durable.
        """
        from repro.rtree.repack import local_repack_disk

        with self._lock:
            result = local_repack_disk(self._tree, region=region,
                                       method=method, distance=distance)
            self._tree.flush()
            return result

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            self._tree.flush()

    def close(self) -> None:
        with self._lock:
            self._tree.close()

    def __enter__(self) -> "DiskSpatialIndex":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
