"""An in-memory B+-tree (Bayer & McCreight 1972).

This is the "indexed the usual way" of the paper's Section 2.1: secondary
indexes over alphanumeric columns.  Keys are any totally ordered Python
values; duplicates are supported by keeping a list of values per key at
the leaf level.  Leaves are chained for cheap range scans.

The structure is deliberately classic: internal nodes hold separator keys
and children; leaves hold (key, values) pairs.  ``order`` is the maximum
number of children of an internal node (equivalently, a leaf holds at
most ``order - 1`` keys).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[list[Any]] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.children: list[Any] = []  # _Leaf or _Internal


class BTree:
    """A B+-tree index mapping keys to lists of values.

    Args:
        order: maximum fan-out of internal nodes; at least 3.

    Example::

        idx = BTree(order=32)
        idx.insert("Springfield", row_id)
        idx.search("Springfield")          # -> [row_id]
        list(idx.range("A", "M"))          # keys in [A, M)
    """

    def __init__(self, order: int = 32):
        if order < 3:
            raise ValueError("B-tree order must be at least 3")
        self.order = order
        self._root: _Leaf | _Internal = _Leaf()
        self._size = 0  # number of (key, value) pairs

    @classmethod
    def bulk_load(cls, items, order: int = 32,
                  fill: float = 1.0) -> "BTree":
        """Build a tree bottom-up from (key, value) pairs.

        The B-tree analogue of the paper's PACK: sort once, emit full
        leaves left to right, then build the interior levels over them.
        Far cheaper than repeated inserts and yields maximal fill.

        Args:
            items: iterable of ``(key, value)`` pairs (any order;
                duplicates allowed — they merge per key).
            order: fan-out, as for the constructor.
            fill: target leaf fill fraction in (0, 1]; lower values leave
                room for later inserts.

        Raises:
            ValueError: for an invalid order or fill fraction.
        """
        if not 0.0 < fill <= 1.0:
            raise ValueError(f"fill must be in (0, 1], got {fill}")
        tree = cls(order=order)
        pairs = sorted(items, key=lambda kv: kv[0])
        if not pairs:
            return tree

        # Merge duplicates into (key, [values]) runs.
        merged: list[tuple] = []
        values: list = []
        for key, value in pairs:
            if merged and merged[-1][0] == key:
                merged[-1][1].append(value)
            else:
                merged.append((key, [value]))
        per_leaf = max(1, int((order - 1) * fill))

        leaves: list[_Leaf] = []
        for start in range(0, len(merged), per_leaf):
            leaf = _Leaf()
            chunk = merged[start:start + per_leaf]
            leaf.keys = [k for k, _v in chunk]
            leaf.values = [v for _k, v in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)

        level: list = leaves
        while len(level) > 1:
            # Chunk boundaries: full fan-out, but never a 1-child tail —
            # rebalance the last two chunks to (order - 1, 2) instead.
            sizes = []
            remaining = len(level)
            while remaining > 0:
                take = min(order, remaining)
                if remaining - take == 1 and take == order:
                    take -= 1
                sizes.append(take)
                remaining -= take
            parents: list[_Internal] = []
            start = 0
            for size in sizes:
                children = level[start:start + size]
                start += size
                node = _Internal()
                node.children = children
                node.keys = [cls._smallest_key(c) for c in children[1:]]
                parents.append(node)
            level = parents
        tree._root = level[0]
        tree._size = len(pairs)
        return tree

    @staticmethod
    def _smallest_key(node: "_Leaf | _Internal"):
        while isinstance(node, _Internal):
            node = node.children[0]
        return node.keys[0]

    def __len__(self) -> int:
        return self._size

    # -- insert --------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Add one (key, value) pair; duplicates of *key* accumulate."""
        result = self._insert(self._root, key, value)
        if result is not None:
            sep, right = result
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node: _Leaf | _Internal, key: Any,
                value: Any) -> Optional[tuple[Any, Any]]:
        if isinstance(node, _Leaf):
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i].append(value)
                return None
            node.keys.insert(i, key)
            node.values.insert(i, [value])
            if len(node.keys) >= self.order:
                return self._split_leaf(node)
            return None
        i = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[i], key, value)
        if result is None:
            return None
        sep, right = result
        node.keys.insert(i, sep)
        node.children.insert(i + 1, right)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Any, _Internal]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    # -- lookup --------------------------------------------------------------

    def search(self, key: Any) -> list[Any]:
        """All values stored under *key* (empty list when absent)."""
        leaf, i = self._find_leaf(key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return list(leaf.values[i])
        return []

    def contains(self, key: Any) -> bool:
        """True when at least one value is stored under *key*."""
        leaf, i = self._find_leaf(key)
        return i < len(leaf.keys) and leaf.keys[i] == key

    def _find_leaf(self, key: Any) -> tuple[_Leaf, int]:
        node = self._root
        while isinstance(node, _Internal):
            i = bisect.bisect_right(node.keys, key)
            node = node.children[i]
        return node, bisect.bisect_left(node.keys, key)

    # -- scans ----------------------------------------------------------------

    def range(self, lo: Any = None,
              hi: Any = None) -> Iterator[tuple[Any, Any]]:
        """(key, value) pairs with ``lo <= key < hi``, in key order.

        ``None`` bounds are open (scan from the start / to the end).
        """
        if lo is None:
            leaf: Optional[_Leaf] = self._leftmost_leaf()
            i = 0
        else:
            found, i = self._find_leaf(lo)
            leaf = found
        while leaf is not None:
            while i < len(leaf.keys):
                key = leaf.keys[i]
                if hi is not None and key >= hi:
                    return
                for v in leaf.values[i]:
                    yield key, v
                i += 1
            leaf = leaf.next
            i = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        """Every (key, value) pair in key order."""
        return self.range()

    def keys(self) -> Iterator[Any]:
        """Distinct keys in order."""
        leaf: Optional[_Leaf] = self._leftmost_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    # -- delete ---------------------------------------------------------------

    def delete(self, key: Any, value: Any) -> bool:
        """Remove one (key, value) pair; returns False when absent.

        Underflow handling is lazy (leaves may become sparse) — adequate
        for a workload the paper itself describes as "not update
        intensive but rather static".  Keys with no remaining values are
        removed from their leaf.
        """
        leaf, i = self._find_leaf(key)
        if i >= len(leaf.keys) or leaf.keys[i] != key:
            return False
        try:
            leaf.values[i].remove(value)
        except ValueError:
            return False
        if not leaf.values[i]:
            del leaf.keys[i]
            del leaf.values[i]
        self._size -= 1
        return True

    # -- introspection -----------------------------------------------------------

    def height(self) -> int:
        """Edges from the root to the leaf level."""
        h = 0
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
            h += 1
        return h

    def validate(self) -> None:
        """Check ordering and fan-out invariants (testing hook)."""
        def walk(node: _Leaf | _Internal,
                 lo: Any, hi: Any) -> None:
            if isinstance(node, _Leaf):
                assert node.keys == sorted(node.keys), "unsorted leaf"
                for k in node.keys:
                    assert lo is None or k >= lo, "leaf key below bound"
                    assert hi is None or k < hi, "leaf key above bound"
                return
            assert node.keys == sorted(node.keys), "unsorted internal node"
            assert len(node.children) == len(node.keys) + 1, \
                "child/key count mismatch"
            assert len(node.children) <= self.order, "internal overflow"
            for idx, child in enumerate(node.children):
                child_lo = node.keys[idx - 1] if idx > 0 else lo
                child_hi = node.keys[idx] if idx < len(node.keys) else hi
                walk(child, child_lo, child_hi)

        walk(self._root, None, None)
        assert self._size == sum(1 for _ in self.items()), "size drift"
