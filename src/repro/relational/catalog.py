"""The catalog: relations, pictures and their spatial indexes.

The paper's architecture (Figure 1.1) pairs an alphanumeric data
processor with a pictorial processor.  The :class:`Database` catalog is
the seam between them: it owns the relations, the named *pictures*, and
for each (picture, relation, pictorial column) association a packed
R-tree whose leaf entries carry row ids — the paper's backward
identifiers from picture space into tuples (Section 2.1).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.region import Region
from repro.geometry.segment import Segment
from repro.relational.relation import Column, Relation, RowId, SchemaError
from repro.rtree.packing import pack
from repro.rtree.repack import RepackResult, local_repack
from repro.rtree.tree import RTree


def index_items(relation: Relation, column: str,
                ) -> Iterator[tuple[Rect, RowId]]:
    """Stream ``(MBR, row id)`` index entries for *relation.column*.

    A generator on purpose: the out-of-core bulk loader consumes it
    lazily, so building a disk index never materialises the entry list.
    """
    for rid, row in relation.rows():
        yield mbr_of_value(row[column]), rid


def mbr_of_value(value: Any) -> Rect:
    """The MBR of a pictorial domain value (point / segment / region).

    Raises:
        TypeError: for values outside the pictorial domains.
    """
    if isinstance(value, Point):
        return Rect.from_point(value)
    if isinstance(value, Segment):
        return value.mbr()
    if isinstance(value, Region):
        return value.mbr()
    if isinstance(value, Rect):
        return value
    raise TypeError(f"{type(value).__name__} is not a pictorial value")


class Picture:
    """A named picture with R-tree indexes over associated relations.

    One picture can index several relations (the paper's juxtaposition
    queries search two indexes over the same geographic area), and one
    relation can be associated with several pictures.
    """

    def __init__(self, name: str, universe: Rect):
        self.name = name
        self.universe = universe
        # (relation name, column name) -> index of (mbr, row id): an
        # in-memory RTree or a disk-backed DiskSpatialIndex.
        self._indexes: dict[tuple[str, str], Any] = {}

    def register(self, relation: Relation, column: str,
                 max_entries: int = 16, method: str = "nn") -> RTree:
        """Build a packed R-tree over *relation.column* for this picture.

        The initial index is PACKed (Section 3.3); later inserts into the
        relation go through :meth:`index_insert`, exercising the paper's
        Section 3.4 update path.

        Raises:
            SchemaError: when the column is not pictorial.
        """
        col = relation.column(column)
        if not col.is_pictorial:
            raise SchemaError(
                f"column {column!r} of {relation.name!r} is not pictorial")
        items = [(mbr_of_value(row[column]), rid)
                 for rid, row in relation.rows()]
        tree = pack(items, max_entries=max_entries, method=method)
        self._indexes[(relation.name, column)] = tree
        return tree

    def register_disk(self, relation: Relation, column: str, path: str,
                      max_entries: Optional[int] = None,
                      method: str = "hilbert", run_size: int = 100_000,
                      workers: int = 0, **tree_kwargs):
        """Build a disk-backed index over *relation.column* at *path*.

        The out-of-core counterpart of :meth:`register`: entries stream
        through :mod:`repro.rtree.bulkload` into a
        :class:`~repro.relational.diskindex.DiskSpatialIndex`, so the
        index can exceed memory.  It is also the only index kind the
        server's ``REPACK`` offline rebuild applies to non-trivially
        (see :meth:`Database.rebuild_index`).

        Raises:
            SchemaError: when the column is not pictorial.
        """
        from repro.relational.diskindex import DiskSpatialIndex

        col = relation.column(column)
        if not col.is_pictorial:
            raise SchemaError(
                f"column {column!r} of {relation.name!r} is not pictorial")
        index = DiskSpatialIndex(path, max_entries=max_entries,
                                 **tree_kwargs)
        index.load(index_items(relation, column), method=method,
                   run_size=run_size, workers=workers)
        self._indexes[(relation.name, column)] = index
        return index

    def index(self, relation_name: str, column: str = "loc") -> RTree:
        """The R-tree for (relation, column).

        Raises:
            KeyError: when the association was never registered.
        """
        try:
            return self._indexes[(relation_name, column)]
        except KeyError:
            raise KeyError(
                f"picture {self.name!r} has no index for "
                f"{relation_name}.{column}") from None

    def has_index(self, relation_name: str, column: str = "loc") -> bool:
        return (relation_name, column) in self._indexes

    def index_insert(self, relation: Relation, column: str,
                     rid: RowId) -> None:
        """Reflect a relation insert into this picture's R-tree."""
        tree = self.index(relation.name, column)
        tree.insert(mbr_of_value(relation.get(rid)[column]), rid)

    def index_delete(self, relation: Relation, column: str, rid: RowId,
                     value: Any) -> bool:
        """Reflect a relation delete; *value* is the old pictorial value."""
        tree = self.index(relation.name, column)
        return tree.delete(mbr_of_value(value), rid)

    def associations(self) -> Iterator[tuple[str, str]]:
        """(relation, column) pairs indexed on this picture."""
        return iter(self._indexes)


class Database:
    """The top-level catalog of relations and pictures.

    Example::

        db = Database()
        cities = db.create_relation("cities", [
            Column("city", "str"), Column("population", "int"),
            Column("loc", "point")])
        ...
        us_map = db.create_picture("us-map", Rect(0, 0, 1000, 1000))
        us_map.register(cities, "loc")
        rids = db.spatial_search("us-map", "cities", window)
    """

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._pictures: dict[str, Picture] = {}
        self._locations: dict[str, Rect] = {}
        self._generation = 0
        # (picture, relation, column) -> (generation, IndexSummary);
        # entries from an older generation are recomputed on access.
        self._index_summaries: dict[tuple[str, str, str],
                                    tuple[int, Any]] = {}

    # -- data generation -------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every mutation of stored data.

        Anything whose validity depends on the database contents (most
        importantly the query server's result cache) keys itself on this
        number: a cached value tagged with an older generation is stale
        by definition.  :meth:`insert`, :meth:`delete` and :meth:`repack`
        bump it automatically; out-of-band mutations (e.g. writing to a
        :class:`Relation` directly) should call :meth:`bump_generation`.
        """
        return self._generation

    def bump_generation(self) -> int:
        """Advance the data generation; returns the new value."""
        self._generation += 1
        return self._generation

    # -- named locations -------------------------------------------------------

    def define_location(self, name: str, area: Rect) -> None:
        """Predefine a named location usable in at-clauses.

        Section 2.2: "The location variable may just be a name of a
        location predefined outside the retrieve mapping."  After
        ``db.define_location("eastern-us", Rect(...))`` a query may say
        ``at loc covered-by eastern-us``.

        Raises:
            ValueError: for invalid rectangles.
        """
        if not area.is_valid():
            raise ValueError(f"invalid location rectangle {area!r}")
        self._locations[name] = area

    def location(self, name: str) -> Rect:
        """A predefined location by name.

        Raises:
            KeyError: when no such location was defined.
        """
        try:
            return self._locations[name]
        except KeyError:
            raise KeyError(f"no location named {name!r}") from None

    def has_location(self, name: str) -> bool:
        return name in self._locations

    # -- relations ------------------------------------------------------------

    def create_relation(self, name: str,
                        columns: Iterable[Column]) -> Relation:
        """Create and register a relation.

        Raises:
            SchemaError: when the name is taken.
        """
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        relation = Relation(name, columns)
        self._relations[name] = relation
        return relation

    def attach_relation(self, relation) -> None:
        """Register an externally built relation (e.g. a disk-backed
        :class:`~repro.relational.persistent.PersistentRelation`).

        When the relation reports that its storage replayed a write-ahead
        log on open (``relation.recovered``), the data generation is
        bumped: whatever this process — or the query server's result
        cache — believed about the old on-disk state is stale by
        definition after a crash recovery.

        Raises:
            SchemaError: when the name is taken.
        """
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation
        if getattr(relation, "recovered", False):
            self._generation += 1

    def create_persistent_relation(self, name: str,
                                   columns: Iterable[Column], path: str,
                                   **storage_kwargs):
        """Create (or reopen) a durable disk-backed relation and attach it.

        Keyword arguments are forwarded to
        :class:`~repro.relational.persistent.PersistentRelation` —
        ``page_size``, ``buffer_capacity``, ``durable``, ``wal_sync``.
        """
        from repro.relational.persistent import PersistentRelation

        relation = PersistentRelation(name, list(columns), path,
                                      **storage_kwargs)
        self.attach_relation(relation)
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"no relation named {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def relations(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    # -- pictures ------------------------------------------------------------

    def create_picture(self, name: str, universe: Rect) -> Picture:
        """Create and register a picture.

        Raises:
            SchemaError: when the name is taken.
        """
        if name in self._pictures:
            raise SchemaError(f"picture {name!r} already exists")
        picture = Picture(name, universe)
        self._pictures[name] = picture
        return picture

    def picture(self, name: str) -> Picture:
        try:
            return self._pictures[name]
        except KeyError:
            raise KeyError(f"no picture named {name!r}") from None

    def has_picture(self, name: str) -> bool:
        return name in self._pictures

    def pictures(self) -> Iterator[Picture]:
        return iter(self._pictures.values())

    # -- integrated operations ---------------------------------------------------

    def insert(self, relation_name: str, row: dict[str, Any]) -> RowId:
        """Insert a row and update every picture index that covers it.

        This is the paper's Section 2.3 update path: "an insertion or
        modification of a tuple should include spatial information for
        updating each of the spatial index[es] associated with the
        updated relation".
        """
        relation = self.relation(relation_name)
        rid = relation.insert(row)
        for picture in self._pictures.values():
            for col in relation.pictorial_columns():
                if picture.has_index(relation_name, col.name):
                    picture.index_insert(relation, col.name, rid)
        self._generation += 1
        return rid

    def delete(self, relation_name: str, rid: RowId) -> None:
        """Delete a row and purge it from every covering picture index."""
        relation = self.relation(relation_name)
        row = relation.get(rid)
        for picture in self._pictures.values():
            for col in relation.pictorial_columns():
                if picture.has_index(relation_name, col.name):
                    picture.index_delete(relation, col.name, rid,
                                         row[col.name])
        relation.delete(rid)
        self._generation += 1

    def repack(self, picture_name: str, relation_name: str,
               column: str = "loc", region: Optional[Rect] = None,
               method: str = "nn",
               distance: str = "center") -> RepackResult:
        """Locally re-PACK one picture index (Section 3.4's update path).

        Rebuilds the smallest subtree of the (picture, relation, column)
        R-tree covering *region* — the whole tree when ``region`` is
        ``None`` — and bumps the data generation so result caches keyed
        on it are invalidated (the tree's *contents* are unchanged, but
        its structure, and therefore any cached cost/trace-derived
        artefacts, are not).
        """
        from repro.relational.diskindex import DiskSpatialIndex

        tree = self.picture(picture_name).index(relation_name, column)
        if isinstance(tree, DiskSpatialIndex):
            result = tree.local_repack(region=region, method=(
                "hilbert" if method == "nn" else method),
                distance=distance)
        else:
            result = local_repack(tree, region=region, method=method,
                                  distance=distance)
        self._generation += 1
        return result

    def rebuild_index(self, picture_name: str, relation_name: str,
                      column: str = "loc", method: Optional[str] = None,
                      run_size: int = 100_000, workers: int = 0) -> int:
        """Offline rebuild of one picture index from its relation.

        This is the ``REPACK`` verb's engine.  For a disk-backed
        :class:`~repro.relational.diskindex.DiskSpatialIndex` the
        relation streams through the out-of-core bulk loader into a
        fresh file which is atomically swapped under the live tree — a
        crash mid-rebuild leaves the old index readable.  For an
        in-memory index the tree is simply re-PACKed.  Either way the
        data generation is bumped so the server's result cache drops
        everything derived from the old structure.

        Returns the number of entries in the rebuilt index.
        """
        from repro.relational.diskindex import DiskSpatialIndex

        picture = self.picture(picture_name)
        index = picture.index(relation_name, column)
        relation = self.relation(relation_name)
        items = index_items(relation, column)
        if isinstance(index, DiskSpatialIndex):
            index.rebuild(items, method=method or "hilbert",
                          run_size=run_size, workers=workers)
            count = len(index)
        else:
            tree = pack(list(items), max_entries=index.max_entries,
                        method=method or "nn")
            picture._indexes[(relation_name, column)] = tree
            count = len(tree)
        self._generation += 1
        return count

    def index_summary(self, picture_name: str, relation_name: str,
                      column: str = "loc"):
        """Planner statistics for one picture index, cached per generation.

        Returns an :class:`~repro.relational.stats.IndexSummary` built
        from the live index.  The summary is recomputed lazily whenever
        the data :attr:`generation` has moved past the cached one, so a
        plan costed from it always reflects the current tree structure.

        Raises:
            KeyError: when picture, relation or association is unknown.
        """
        from repro.relational.stats import summarize_index

        picture = self.picture(picture_name)
        index = picture.index(relation_name, column)
        key = (picture_name, relation_name, column)
        cached = self._index_summaries.get(key)
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        summary = summarize_index(index, picture.universe)
        self._index_summaries[key] = (self._generation, summary)
        return summary

    def spatial_search(self, picture_name: str, relation_name: str,
                       window: Rect, column: str = "loc",
                       within: bool = False) -> list[RowId]:
        """Direct spatial search: row ids of objects in *window*.

        Args:
            within: when True, only objects entirely inside the window
                (the paper's SEARCH uses WITHIN at the leaves); otherwise
                any intersecting object qualifies.
        """
        tree = self.picture(picture_name).index(relation_name, column)
        if within:
            return tree.search_within(window)
        return tree.search(window)

    def rows_for(self, relation_name: str,
                 rids: Iterable[RowId]) -> list[dict[str, Any]]:
        """Materialise rows from the ids a spatial search returned."""
        relation = self.relation(relation_name)
        return [relation.get(rid) for rid in rids]
