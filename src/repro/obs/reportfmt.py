"""Rendering of observability registries as text reports.

Produces the ``EXPLAIN STATS`` listing printed by the PSQL REPL and the
summaries the benchmark harness writes: counters grouped by their dotted
prefix, timer accumulations, and (optionally) the tail of the trace ring
buffer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Registry


def _fmt_value(value: int | float) -> str:
    if isinstance(value, int):
        return f"{value:,}"
    return f"{value:,.3f}"


def format_counters(counters: dict[str, int | float]) -> list[str]:
    """Counter lines, sorted by name, grouped by top-level prefix."""
    lines: list[str] = []
    if not counters:
        return lines
    width = max(len(name) for name in counters)
    previous_group = None
    for name in sorted(counters):
        group = name.split(".", 1)[0]
        if previous_group is not None and group != previous_group:
            lines.append("")
        previous_group = group
        lines.append(f"  {name:<{width}}  {_fmt_value(counters[name]):>12}")
    return lines


def format_report(registry: "Registry", prefix: Optional[str] = None,
                  trace_tail: int = 0) -> str:
    """The full textual report for one registry."""
    sections: list[str] = []

    counters = registry.snapshot(prefix)
    sections.append("counters:")
    if counters:
        sections.extend(format_counters(counters))
    else:
        sections.append("  (none recorded)")

    if registry.timers:
        sections.append("timers:")
        width = max(len(name) for name in registry.timers)
        for name in sorted(registry.timers):
            stat = registry.timers[name]
            sections.append(
                f"  {name:<{width}}  {stat.total * 1e3:>10.3f} ms"
                f"  over {stat.count} call{'s' if stat.count != 1 else ''}"
                f"  (mean {stat.mean * 1e3:.3f} ms)")

    if trace_tail > 0:
        events = registry.trace_buffer.events()[-trace_tail:]
        if events:
            sections.append(f"trace (last {len(events)}):")
            for ev in events:
                fields = " ".join(f"{k}={v!r}"
                                  for k, v in ev.fields.items())
                sections.append(f"  #{ev.seq} {ev.name} {fields}".rstrip())

    return "\n".join(sections)
