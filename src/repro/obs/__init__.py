"""repro.obs — unified observability: counters, timers, trace events.

Every paper metric is ultimately an *observability* claim — Table 1's
"average nodes visited per query" (A), the buffer experiments' hit
rates, PSQL's access-path decisions.  This package gives the whole
library one lightweight substrate for those numbers instead of ad-hoc
per-module counters:

- **Counters** — hierarchical dotted names (``rtree.search.nodes_visited``,
  ``storage.buffer.hits``) accumulated in a plain dict.
- **Timers** — wall-clock accumulation per name, used as context managers.
- **Trace events** — an optional fixed-capacity ring buffer of structured
  ``(seq, name, fields)`` records for after-the-fact inspection.

All three live in a :class:`Registry`.  A process-global default registry
always exists; :func:`scope` pushes an injectable per-query registry that
(optionally) forwards everything to its parent, so a single query can be
measured in isolation while global totals keep accumulating — this is how
the PSQL REPL's ``EXPLAIN STATS`` works.

Cost discipline: instrumented call sites guard on the module-level
:data:`ENABLED` flag (read it as ``obs.ENABLED``, never ``from repro.obs
import ENABLED`` — the latter snapshots the value).  With the flag off the
entire subsystem reduces to one local boolean test per query and records
nothing; ``benchmarks/bench_obs_overhead.py`` keeps that overhead under
10% of search throughput.

Typical use::

    from repro import obs

    obs.enable()
    tree.search(window)
    print(obs.report(prefix="rtree"))

    with obs.scope(enable=True) as reg:     # one query, isolated
        tree.search(window)
    print(reg.counters.get("rtree.search.nodes_visited"))

The scope stack is **thread-local**: every thread sees the process-global
default registry at the bottom of its own stack, and a scope pushed in
one thread is invisible to every other.  This is what lets a server
worker thread run each query under ``scope(forward=False, enable=True)``
without interleaving its counters with concurrently executing queries
(see :mod:`repro.server`).  The :data:`ENABLED` flag itself stays
process-global — long-running concurrent workloads should enable it once
for their lifetime rather than toggling it per query from many threads.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Optional

__all__ = [
    "ENABLED",
    "Counters",
    "Registry",
    "TimerStat",
    "TraceBuffer",
    "TraceEvent",
    "active",
    "bump",
    "default_registry",
    "disable",
    "enable",
    "get",
    "is_enabled",
    "report",
    "reset",
    "scope",
    "snapshot",
    "timer",
    "trace",
]

#: Module-level fast-path flag.  Hot paths read this once per query; when
#: it is False no counter, timer or trace event is recorded anywhere.
ENABLED = False


# ---------------------------------------------------------------------------
# Counters
# ---------------------------------------------------------------------------


class Counters:
    """A bag of named integer counters with hierarchical dotted names.

    Deliberately dependency-free and always usable on its own: components
    that must count unconditionally (e.g. a buffer pool's per-instance
    :class:`~repro.storage.buffer.BufferStats`) hold a private ``Counters``
    regardless of the global enable flag.

    Thread-safe: every public method takes the internal lock exactly once,
    so :meth:`snapshot` / :meth:`as_dict` return a consistent copy even
    while other threads are bumping — the same single-acquisition
    discipline as :meth:`repro.server.cache.QueryCache.stats`.  Without it
    a ``dict()`` copy racing a first-time bump (dict resize) can raise
    ``RuntimeError: dictionary changed size during iteration`` under a
    concurrent HEALTH read.
    """

    __slots__ = ("_values", "_lock")

    def __init__(self) -> None:
        self._values: dict[str, int | float] = {}
        self._lock = threading.Lock()

    def bump(self, name: str, n: int | float = 1) -> None:
        """Add *n* (default 1) to counter *name*, creating it at zero."""
        with self._lock:
            self._values[name] = self._values.get(name, 0) + n

    def get(self, name: str, default: int | float = 0) -> int | float:
        """Current value of *name* (*default* when never bumped)."""
        with self._lock:
            return self._values.get(name, default)

    def set(self, name: str, value: int | float) -> None:
        """Overwrite counter *name* (used by stats facades, not hot paths)."""
        with self._lock:
            self._values[name] = value

    def merge(self, values: dict[str, int | float]) -> None:
        """Add every counter in *values* onto this bag atomically.

        The export/import path for cross-thread (or cross-process) metric
        aggregation: a worker snapshots its scoped registry with
        :meth:`as_dict` and a single owner thread merges the snapshots.
        A reader never observes a half-applied merge.
        """
        with self._lock:
            for name, value in values.items():
                self._values[name] = self._values.get(name, 0) + value

    def _as_dict_locked(self,
                        prefix: Optional[str]) -> dict[str, int | float]:
        # Caller holds self._lock.
        if prefix is None:
            return dict(self._values)
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {k: v for k, v in self._values.items()
                if k == prefix or k.startswith(dotted)}

    def as_dict(self, prefix: Optional[str] = None) -> dict[str, int | float]:
        """A copy of all counters, optionally restricted to a dotted prefix."""
        with self._lock:
            return self._as_dict_locked(prefix)

    #: Alias matching :meth:`Registry.snapshot` — an atomic point-in-time
    #: copy taken under a single lock acquisition.
    snapshot = as_dict

    def reset(self, prefix: Optional[str] = None) -> None:
        """Drop all counters (or only those under a dotted prefix)."""
        with self._lock:
            if prefix is None:
                self._values.clear()
                return
            for k in list(self._as_dict_locked(prefix)):
                del self._values[k]

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._values))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counters({self._values!r})"


# ---------------------------------------------------------------------------
# Timers
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class TimerStat:
    """Accumulated wall-clock time for one named timer."""

    count: int = 0
    total: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _Timer:
    """Context manager recording one timed interval into a registry."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "Registry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._registry.record_time(self._name,
                                   time.perf_counter() - self._start)


class _NullTimer:
    """Do-nothing timer returned while observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_TIMER = _NullTimer()


# ---------------------------------------------------------------------------
# Trace events
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured trace record."""

    seq: int
    name: str
    fields: dict[str, Any]


class TraceBuffer:
    """Fixed-capacity ring buffer of trace events (oldest dropped first)."""

    __slots__ = ("_events", "_seq", "capacity")

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("trace buffer capacity must be positive")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0

    def record(self, name: str, **fields: Any) -> None:
        self._seq += 1
        self._events.append(TraceEvent(seq=self._seq, name=name,
                                       fields=fields))

    def events(self) -> list[TraceEvent]:
        """All buffered events, oldest first."""
        return list(self._events)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (>= len(events()) once wrapped)."""
        return self._seq

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class Registry:
    """Counters + timers + trace buffer, with optional parent forwarding.

    A registry created with a *parent* forwards every record to it, so a
    per-query scope sees only its own query while enclosing registries
    (ultimately the process-global default) keep cumulative totals.
    """

    __slots__ = ("counters", "timers", "trace_buffer", "parent")

    def __init__(self, parent: Optional["Registry"] = None,
                 trace_capacity: int = 1024):
        self.counters = Counters()
        self.timers: dict[str, TimerStat] = {}
        self.trace_buffer = TraceBuffer(capacity=trace_capacity)
        self.parent = parent

    # -- recording ---------------------------------------------------------

    def bump(self, name: str, n: int | float = 1) -> None:
        reg: Optional[Registry] = self
        while reg is not None:
            reg.counters.bump(name, n)
            reg = reg.parent

    def record_time(self, name: str, seconds: float) -> None:
        reg: Optional[Registry] = self
        while reg is not None:
            stat = reg.timers.get(name)
            if stat is None:
                stat = reg.timers[name] = TimerStat()
            stat.count += 1
            stat.total += seconds
            reg = reg.parent

    def timer(self, name: str) -> _Timer:
        return _Timer(self, name)

    def trace(self, name: str, **fields: Any) -> None:
        reg: Optional[Registry] = self
        while reg is not None:
            reg.trace_buffer.record(name, **fields)
            reg = reg.parent

    # -- inspection ---------------------------------------------------------

    def snapshot(self, prefix: Optional[str] = None) -> dict[str, int | float]:
        return self.counters.as_dict(prefix)

    def reset(self) -> None:
        """Clear this registry's counters, timers and trace buffer.

        Does not touch the parent chain: a scoped reset must not erase
        global totals.
        """
        self.counters.reset()
        self.timers.clear()
        self.trace_buffer.clear()

    def report(self, prefix: Optional[str] = None,
               trace_tail: int = 0) -> str:
        """Human-readable stats listing (the ``EXPLAIN STATS`` payload).

        Args:
            prefix: restrict counters to one dotted subtree.
            trace_tail: include the last N trace events (0 = none).
        """
        from repro.obs.reportfmt import format_report
        return format_report(self, prefix=prefix, trace_tail=trace_tail)


# ---------------------------------------------------------------------------
# Global default registry and the active-scope stack
# ---------------------------------------------------------------------------

_default = Registry()


class _ScopeStack(threading.local):
    """Per-thread registry stack, bottoming out at the global default."""

    def __init__(self) -> None:
        self.regs: list[Registry] = [_default]


_tls = _ScopeStack()


def default_registry() -> Registry:
    """The process-global registry (bottom of every thread's stack)."""
    return _default


def active() -> Registry:
    """The registry currently receiving records in **this thread**."""
    return _tls.regs[-1]


@contextmanager
def scope(forward: bool = True, enable: bool = False,
          trace_capacity: int = 1024) -> Iterator[Registry]:
    """Push a fresh registry for the duration of a ``with`` block.

    Args:
        forward: when True (default) records also propagate to the
            enclosing registry chain, so global totals keep accumulating.
        enable: temporarily force :data:`ENABLED` on inside the block —
            how a single query is measured without globally enabling
            instrumentation (``EXPLAIN STATS`` does exactly this).
        trace_capacity: ring-buffer size for the scoped registry.

    Yields:
        The scoped :class:`Registry`; read its counters after the block.

    The scope affects only the calling thread's stack.  ``enable`` still
    toggles the process-global :data:`ENABLED` flag, so concurrent
    threads should not race ``enable=True`` scopes against each other —
    enable instrumentation once for the workload instead (the query
    server does exactly this).
    """
    global ENABLED
    stack = _tls.regs
    reg = Registry(parent=stack[-1] if forward else None,
                   trace_capacity=trace_capacity)
    stack.append(reg)
    previous = ENABLED
    if enable:
        ENABLED = True
    try:
        yield reg
    finally:
        ENABLED = previous
        stack.pop()


# ---------------------------------------------------------------------------
# Module-level conveniences (all no-ops while disabled)
# ---------------------------------------------------------------------------


def enable() -> None:
    """Turn instrumentation on process-wide."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn instrumentation off process-wide."""
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    return ENABLED


def bump(name: str, n: int | float = 1) -> None:
    """Bump a counter on the active registry (no-op while disabled)."""
    if ENABLED:
        _tls.regs[-1].bump(name, n)


def get(name: str, default: int | float = 0) -> int | float:
    """Read a counter from the active registry."""
    return _tls.regs[-1].counters.get(name, default)


def timer(name: str) -> _Timer | _NullTimer:
    """A wall-clock timer context manager (null object while disabled)."""
    if ENABLED:
        return _tls.regs[-1].timer(name)
    return _NULL_TIMER


def trace(name: str, **fields: Any) -> None:
    """Record a structured trace event (no-op while disabled)."""
    if ENABLED:
        _tls.regs[-1].trace(name, **fields)


def snapshot(prefix: Optional[str] = None) -> dict[str, int | float]:
    """Counters of the active registry (optionally one dotted subtree)."""
    return _tls.regs[-1].snapshot(prefix)


def reset() -> None:
    """Clear the active registry (scoped resets leave global totals alone)."""
    _tls.regs[-1].reset()


def report(prefix: Optional[str] = None, trace_tail: int = 0) -> str:
    """Formatted stats listing for the active registry."""
    return _tls.regs[-1].report(prefix=prefix, trace_tail=trace_tail)
