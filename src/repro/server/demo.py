"""Deterministic demo database + factory resolution for the server.

The server (and its process-pool workers) need a way to *name* a
database they can each construct identically: a **factory spec** string
``"package.module:callable"``.  :func:`resolve_factory` turns the spec
into the callable; :func:`demo_database` is the default factory — the
same synthetic US map the test suite and the paper's figures use, fully
registered with pictures and packed R-tree indexes.

Determinism matters twice: spawned pool workers must build *the same*
database the parent describes, and cached results must be reproducible
run to run.
"""

from __future__ import annotations

import importlib
import os
from typing import Callable

from repro.relational.catalog import Database
from repro.relational.relation import Column
from repro.workloads import build_us_map

__all__ = ["DEFAULT_FACTORY_SPEC", "bench_database", "demo_database",
           "resolve_factory"]

DEFAULT_FACTORY_SPEC = "repro.server.demo:demo_database"


def demo_database(scale: int = 1, seed: int = 7) -> Database:
    """A fully loaded pictorial database over the synthetic US map.

    Args:
        scale: linear size multiplier (cities per state etc.); the
            throughput benchmark raises it to make queries CPU-heavier.
        seed: RNG seed; the database is a pure function of
            ``(scale, seed)``.
    """
    us_map = build_us_map(seed=seed, states_x=4, states_y=3,
                          cities_per_state=6 * scale, lakes=5 * scale,
                          highways=3 * scale)
    db = Database()
    cities = db.create_relation("cities", [
        Column("city", "str"), Column("state", "str"),
        Column("population", "int"), Column("loc", "point")])
    for c in us_map.cities:
        cities.insert({"city": c.name, "state": c.state,
                       "population": c.population, "loc": c.loc})
    states = db.create_relation("states", [
        Column("state", "str"), Column("population-density", "float"),
        Column("loc", "region")])
    for s in us_map.states:
        states.insert({"state": s.name,
                       "population-density": s.population_density,
                       "loc": s.loc})
    zones = db.create_relation("time-zones", [
        Column("zone", "str"), Column("hour-diff", "int"),
        Column("loc", "region")])
    for z in us_map.time_zones:
        zones.insert({"zone": z.zone, "hour-diff": z.hour_diff,
                      "loc": z.loc})
    lakes = db.create_relation("lakes", [
        Column("lake", "str"), Column("area", "float"),
        Column("volume", "float"), Column("loc", "region")])
    for lake in us_map.lakes:
        lakes.insert({"lake": lake.name, "area": lake.area,
                      "volume": lake.volume, "loc": lake.loc})
    highways = db.create_relation("highways", [
        Column("hwy-name", "str"), Column("hwy-section", "int"),
        Column("loc", "segment")])
    for h in us_map.highways:
        highways.insert({"hwy-name": h.hwy_name,
                         "hwy-section": h.hwy_section, "loc": h.loc})

    us_pic = db.create_picture("us-map", us_map.universe)
    us_pic.register(cities, "loc")
    us_pic.register(states, "loc")
    us_pic.register(highways, "loc")
    lake_pic = db.create_picture("lake-map", us_map.universe)
    lake_pic.register(lakes, "loc")
    zone_pic = db.create_picture("time-zone-map", us_map.universe)
    zone_pic.register(zones, "loc")
    return db


def bench_database() -> Database:
    """Factory for the throughput benchmark: scale set via environment.

    Factory specs name zero-argument callables, and spawned pool
    workers inherit the parent's environment — so ``REPRO_DEMO_SCALE``
    is how the benchmark sizes every worker's database identically.
    """
    scale = int(os.environ.get("REPRO_DEMO_SCALE", "2"))
    return demo_database(scale=scale)


def resolve_factory(spec: str) -> Callable[[], Database]:
    """Resolve a ``"module:callable"`` factory spec.

    Raises:
        ValueError: when the spec is malformed or does not resolve to a
            callable.
    """
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"factory spec {spec!r} is not of the form 'module:callable'")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ValueError(f"cannot import {module_name!r}: {exc}") from exc
    factory = getattr(module, attr, None)
    if not callable(factory):
        raise ValueError(f"{spec!r} does not name a callable")
    return factory
