"""Blocking TCP client for the PSQL query server.

Synchronous by design — benchmarks drive many of these from plain
threads, applications get the obvious call-and-response shape::

    from repro.server.client import Client

    with Client("127.0.0.1", 7751) as c:
        r = c.query("select city from cities on us-map "
                    "at loc covered-by {400+-150, 300+-150}")
        for row in r.rows:
            print(row)
        print(c.stats()["server.qps"])

``query()`` returns a :class:`~repro.server.protocol.Response`; callers
that prefer exceptions over status checks can chain
``.raise_for_status()``.

Pass ``binary=True`` to negotiate the length-prefixed binary protocol
(``HELLO bin``) at connect time — same :class:`Response` objects, same
cell strings, a fraction of the encode/decode cost.  A server that does
not know ``HELLO`` answers ``ERR`` and the client silently stays on the
text protocol (check :attr:`Client.binary` for the outcome).

Prepared statements work over both framings::

    stmt = c.prepare("select city from cities on us-map "
                     "at loc covered-by {?, ?}")
    r = c.execute(stmt, ("400+-150", "300+-150"))
"""

from __future__ import annotations

import socket
from types import TracebackType
from typing import Optional, Sequence, Union

from repro.server import binproto, protocol
from repro.server.protocol import ProtocolError, Response

__all__ = ["Client", "ClientStatement"]


class ClientStatement:
    """A server-side prepared statement, as the client sees it."""

    __slots__ = ("statement_id", "text", "nparams", "_frames")

    def __init__(self, statement_id: int, text: str, nparams: int):
        self.statement_id = statement_id
        self.text = text
        self.nparams = nparams
        #: memoized request frames per params tuple (binary mode) — a
        #: hot loop re-executing the same binding sends cached bytes
        self._frames: dict = {}

    def _frame(self, params: tuple) -> bytes:
        frame = self._frames.get(params)
        if frame is None:
            frame = binproto.encode_execute(self.statement_id, params)
            if len(self._frames) < 64:
                self._frames[params] = frame
        return frame


class Client:
    """One blocking connection to a :class:`~repro.server.server.PsqlServer`.

    Args:
        host, port: where the server listens.
        timeout: socket timeout in seconds for connect and reads
            (``None`` blocks indefinitely).  Note this is the *client's*
            patience; the server applies its own per-query timeout and
            answers with a ``TIMEOUT`` frame.
        binary: negotiate the binary protocol at connect time.  Falls
            back to text (without error) when the server predates
            ``HELLO``.
    """

    def __init__(self, host: str = "127.0.0.1",
                 port: int = protocol.DEFAULT_PORT,
                 timeout: Optional[float] = 30.0,
                 binary: bool = False):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rwb")
        #: True once the binary protocol is live on this connection.
        self.binary = False
        if binary:
            self._negotiate_binary()

    def _negotiate_binary(self) -> None:
        self._send_line("HELLO bin")
        response = self._read_text_response()
        if response.ok:
            self.binary = True
        # An ERR means a pre-HELLO server: keep talking text.

    # -- commands -----------------------------------------------------------

    def query(self, text: str) -> Response:
        """Execute one PSQL query.

        The text wire protocol is line-based, so embedded newlines in
        *text* are replaced with spaces — whitespace is insignificant
        to PSQL.
        """
        one_line = " ".join(text.splitlines())
        if self.binary:
            return self._binary_roundtrip(binproto.encode_query(one_line))
        return self._roundtrip(f"QUERY {one_line}")

    def explain(self, text: str, analyze: bool = False) -> Response:
        """Fetch the query plan (``EXPLAIN``) as a one-column result.

        With ``analyze=True`` the server also executes the query and
        annotates every plan node with actual row counts and index-node
        accesses.  Each response row is one plan line.
        """
        one_line = " ".join(text.splitlines())
        prefix = "ANALYZE " if analyze else ""
        return self._command(f"EXPLAIN {prefix}{one_line}")

    def prepare(self, template: str) -> ClientStatement:
        """Prepare a ``?``-placeholder query template (``PREPARE``).

        Returns a :class:`ClientStatement` handle for :meth:`execute`.

        Raises:
            ServerError: when the server rejects the template.
        """
        one_line = " ".join(template.splitlines())
        if self.binary:
            response = self._binary_roundtrip(
                binproto.encode_prepare(one_line))
        else:
            response = self._roundtrip(f"PREPARE {one_line}")
        response.raise_for_status()
        # Text acks carry the id in the count field; the placeholder
        # count is recomputed locally (the splitter is shared code).
        nparams = int(response.stats.get("statement.nparams", -1))
        if nparams < 0:
            from repro.psql.prepare import count_placeholders
            nparams = count_placeholders(one_line)
        return ClientStatement(response.nrows, one_line, nparams)

    def execute(self, statement: Union[ClientStatement, int],
                params: Sequence[str] = ()) -> Response:
        """Execute a prepared statement with *params* (``EXECUTE``)."""
        params = tuple(params)
        if isinstance(statement, ClientStatement):
            statement_id = statement.statement_id
            if self.binary:
                return self._binary_roundtrip(statement._frame(params))
        else:
            statement_id = int(statement)
        if self.binary:
            return self._binary_roundtrip(
                binproto.encode_execute(statement_id, params))
        rendered = "\t".join(protocol.escape(p) for p in params)
        command = (f"EXECUTE {statement_id} {rendered}"
                   if params else f"EXECUTE {statement_id}")
        return self._roundtrip(command)

    def repack(self, picture: str, relation: str,
               column: str = "loc") -> Response:
        """Ask the server for an offline index rebuild (``REPACK``).

        On success ``response.generation`` is the post-rebuild data
        generation and ``response.nrows`` the rebuilt index's entry
        count.  Blocks until the rebuild (and its atomic swap) is done.
        """
        return self._command(f"REPACK {picture} {relation} {column}")

    def maintain(self, action: str = "status") -> Response:
        """Control or inspect the background repack daemon (``MAINTAIN``).

        ``on``/``off`` toggle the daemon and return an ack whose
        ``nrows`` is the resulting enabled state; ``status`` and ``run``
        (one synchronous maintenance cycle) return one report line per
        response row.
        """
        return self._command(f"MAINTAIN {action}")

    def advise(self, top: Optional[int] = None) -> Response:
        """Workload analysis and tuning recommendations (``ADVISE``).

        Each response row is one report line: the TOP captured queries
        by accumulated estimated cost, then ranked ``CREATE INDEX`` /
        ``REPACK`` recommendations with predicted workload-cost deltas.
        *top* bounds how many fingerprints are analysed (server default
        when omitted).
        """
        command = "ADVISE" if top is None else f"ADVISE {top}"
        return self._command(command)

    def health(self) -> Response:
        """Graded OK/WARN/FAIL health checks (``HEALTH``).

        Each response row is one report line; the first summarises the
        worst status.
        """
        return self._command("HEALTH")

    def stats(self) -> dict[str, float]:
        """The server's metrics snapshot (the ``STATS`` command)."""
        if self.binary:
            return self._binary_roundtrip(
                binproto.encode_simple(binproto.OP_STATS)).stats
        return self._roundtrip("STATS").stats

    def ping(self) -> bool:
        """Liveness check; True when the server answers ``PONG``."""
        if self.binary:
            response = self._binary_roundtrip(
                binproto.encode_simple(binproto.OP_PING))
        else:
            response = self._roundtrip("PING")
        return response.status == "pong"

    def close(self) -> None:
        """Say QUIT (best effort) and close the socket (idempotent)."""
        if self._sock is None:
            return
        try:
            if self.binary:
                self._send_bytes(
                    binproto.encode_simple(binproto.OP_QUIT))
                self._read_binary_response()
            else:
                self._send_line("QUIT")
                self._read_text_response()
        except (OSError, ProtocolError):
            pass
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass
        self._sock = None  # type: ignore[assignment]

    # -- plumbing -----------------------------------------------------------

    def _command(self, command: str) -> Response:
        """One full text-protocol command line, over either framing."""
        if self.binary:
            return self._binary_roundtrip(binproto.encode_command(command))
        return self._roundtrip(command)

    def _roundtrip(self, command: str) -> Response:
        self._send_line(command)
        return self._read_text_response()

    def _binary_roundtrip(self, request: bytes) -> Response:
        self._send_bytes(request)
        return self._read_binary_response()

    def _send_line(self, line: str) -> None:
        if self._sock is None:
            raise ProtocolError("client is closed")
        self._file.write(line.encode("utf-8") + b"\n")
        self._file.flush()

    def _send_bytes(self, data: bytes) -> None:
        if self._sock is None:
            raise ProtocolError("client is closed")
        self._file.write(data)
        self._file.flush()

    def _read_text_response(self) -> Response:
        lines: list[str] = []
        while True:
            raw = self._file.readline()
            if not raw:
                raise ProtocolError(
                    "connection closed mid-response" if lines
                    else "connection closed by server")
            line = raw.decode("utf-8").rstrip("\n")
            lines.append(line)
            if line == protocol.END:
                break
        return protocol.parse_response(lines)

    def _read_exactly(self, n: int) -> bytes:
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            chunk = self._file.read(remaining)
            if not chunk:
                raise ProtocolError("connection closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks) if len(chunks) != 1 else chunks[0]

    def _read_binary_response(self) -> Response:
        prefix = self._read_exactly(4)
        length = int.from_bytes(prefix, "little")
        if length == 0 or length > binproto.MAX_FRAME:
            raise ProtocolError(f"implausible frame length {length}")
        return binproto.parse_response_body(self._read_exactly(length))

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type: Optional[type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()
