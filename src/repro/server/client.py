"""Blocking TCP client for the PSQL query server.

Synchronous by design — benchmarks drive many of these from plain
threads, applications get the obvious call-and-response shape::

    from repro.server.client import Client

    with Client("127.0.0.1", 7751) as c:
        r = c.query("select city from cities on us-map "
                    "at loc covered-by {400+-150, 300+-150}")
        for row in r.rows:
            print(row)
        print(c.stats()["server.qps"])

``query()`` returns a :class:`~repro.server.protocol.Response`; callers
that prefer exceptions over status checks can chain
``.raise_for_status()``.
"""

from __future__ import annotations

import socket
from types import TracebackType
from typing import Optional

from repro.server import protocol
from repro.server.protocol import ProtocolError, Response

__all__ = ["Client"]


class Client:
    """One blocking connection to a :class:`~repro.server.server.PsqlServer`.

    Args:
        host, port: where the server listens.
        timeout: socket timeout in seconds for connect and reads
            (``None`` blocks indefinitely).  Note this is the *client's*
            patience; the server applies its own per-query timeout and
            answers with a ``TIMEOUT`` frame.
    """

    def __init__(self, host: str = "127.0.0.1",
                 port: int = protocol.DEFAULT_PORT,
                 timeout: Optional[float] = 30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # -- commands -----------------------------------------------------------

    def query(self, text: str) -> Response:
        """Execute one PSQL query.

        The wire protocol is line-based, so embedded newlines in *text*
        are replaced with spaces — whitespace is insignificant to PSQL.
        """
        one_line = " ".join(text.splitlines())
        return self._roundtrip(f"QUERY {one_line}")

    def explain(self, text: str, analyze: bool = False) -> Response:
        """Fetch the query plan (``EXPLAIN``) as a one-column result.

        With ``analyze=True`` the server also executes the query and
        annotates every plan node with actual row counts and index-node
        accesses.  Each response row is one plan line.
        """
        one_line = " ".join(text.splitlines())
        prefix = "ANALYZE " if analyze else ""
        return self._roundtrip(f"EXPLAIN {prefix}{one_line}")

    def repack(self, picture: str, relation: str,
               column: str = "loc") -> Response:
        """Ask the server for an offline index rebuild (``REPACK``).

        On success ``response.generation`` is the post-rebuild data
        generation and ``response.nrows`` the rebuilt index's entry
        count.  Blocks until the rebuild (and its atomic swap) is done.
        """
        return self._roundtrip(f"REPACK {picture} {relation} {column}")

    def advise(self, top: Optional[int] = None) -> Response:
        """Workload analysis and tuning recommendations (``ADVISE``).

        Each response row is one report line: the TOP captured queries
        by accumulated estimated cost, then ranked ``CREATE INDEX`` /
        ``REPACK`` recommendations with predicted workload-cost deltas.
        *top* bounds how many fingerprints are analysed (server default
        when omitted).
        """
        command = "ADVISE" if top is None else f"ADVISE {top}"
        return self._roundtrip(command)

    def health(self) -> Response:
        """Graded OK/WARN/FAIL health checks (``HEALTH``).

        Each response row is one report line; the first summarises the
        worst status.
        """
        return self._roundtrip("HEALTH")

    def stats(self) -> dict[str, float]:
        """The server's metrics snapshot (the ``STATS`` command)."""
        return self._roundtrip("STATS").stats

    def ping(self) -> bool:
        """Liveness check; True when the server answers ``PONG``."""
        return self._roundtrip("PING").status == "pong"

    def close(self) -> None:
        """Say QUIT (best effort) and close the socket (idempotent)."""
        if self._sock is None:
            return
        try:
            self._send_line("QUIT")
            self._read_response()
        except (OSError, ProtocolError):
            pass
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass
        self._sock = None  # type: ignore[assignment]

    # -- plumbing -----------------------------------------------------------

    def _roundtrip(self, command: str) -> Response:
        self._send_line(command)
        return self._read_response()

    def _send_line(self, line: str) -> None:
        if self._sock is None:
            raise ProtocolError("client is closed")
        self._file.write(line.encode("utf-8") + b"\n")
        self._file.flush()

    def _read_response(self) -> Response:
        lines: list[str] = []
        while True:
            raw = self._file.readline()
            if not raw:
                raise ProtocolError(
                    "connection closed mid-response" if lines
                    else "connection closed by server")
            line = raw.decode("utf-8").rstrip("\n")
            lines.append(line)
            if line == protocol.END:
                break
        return protocol.parse_response(lines)

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type: Optional[type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()
