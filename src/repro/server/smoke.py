"""Server integration smoke: boot, hammer with concurrent clients, verify.

``python -m repro.server.smoke`` boots a server on an ephemeral port,
runs three concurrent clients through a mixed PSQL workload, and
asserts every framed result is **byte-identical** to what a direct
in-process ``Session.execute`` produces for the same query.  Exit code
0 on success — CI runs this as its server integration step.

``python -m repro.server.smoke --binary`` runs the same workload over
the length-prefixed binary protocol: every client negotiates ``HELLO
bin`` and the byte-identity check compares against
:func:`repro.server.binproto.encode_result_body` instead of the text
rendering, plus one prepared-statement pass per client.
"""

from __future__ import annotations

import random
import sys
import threading

from repro.psql.executor import Session
from repro.server import binproto, protocol
from repro.server.client import Client
from repro.server.demo import demo_database
from repro.server.server import PsqlServer, ServerConfig

#: A mixed workload: direct spatial search, alphanumeric filtering,
#: juxtaposition, aggregates and plain scans.
SMOKE_QUERIES = [
    "select city from cities on us-map "
    "at loc covered-by {400+-150, 300+-150}",
    "select city, population from cities on us-map "
    "at loc covered-by {500+-500, 300+-300} where population > 500_000",
    "select state from states on us-map "
    "at loc intersecting {250+-250, 150+-150}",
    "select city, zone from cities, time-zones "
    "on us-map, time-zone-map at cities.loc covered-by time-zones.loc",
    "select hwy-name, sum(length(loc)) from highways",
    "select lake, volume from lakes on lake-map "
    "at loc overlapping {500+-500, 300+-300} where volume > 10",
]

#: Prepared-statement twin of the first smoke query; every client also
#: checks PREPARE/EXECUTE returns the same bytes as the plain QUERY.
PREPARE_TEMPLATE = ("select city from cities on us-map "
                    "at loc covered-by {?, ?}")
PREPARE_PARAMS = ("400+-150", "300+-150")

N_CLIENTS = 3
ROUNDS = 4


def run_smoke(verbose: bool = True, binary: bool = False) -> int:
    """Returns a process exit code (0 = all checks passed)."""
    db = demo_database()
    expected = {}
    direct = Session(db)
    for q in SMOKE_QUERIES:
        result = direct.execute(q)
        if binary:
            expected[q] = binproto.encode_result_body(result)
        else:
            payload = "\n".join(protocol.encode_result(result))
            expected[q] = (payload + "\n").encode("utf-8")

    server = PsqlServer(ServerConfig(port=0, workers=N_CLIENTS), db=db)
    host, port = server.start_background()
    if verbose:
        mode = "binary" if binary else "text"
        print(f"smoke server on {host}:{port} ({mode} protocol)")

    failures: list[str] = []
    done = [0]
    lock = threading.Lock()

    def client_main(seed: int) -> None:
        rng = random.Random(seed)
        try:
            with Client(host, port, binary=binary) as client:
                if binary and not client.binary:
                    with lock:
                        failures.append(
                            f"client {seed}: HELLO bin not acknowledged")
                    return
                for _ in range(ROUNDS):
                    queries = SMOKE_QUERIES[:]
                    rng.shuffle(queries)
                    for q in queries:
                        r = client.query(q)
                        if not r.ok:
                            with lock:
                                failures.append(
                                    f"client {seed}: {q!r} -> "
                                    f"{r.status} {r.error_message}")
                        elif r.payload != expected[q]:
                            with lock:
                                failures.append(
                                    f"client {seed}: payload mismatch "
                                    f"for {q!r}")
                        else:
                            with lock:
                                done[0] += 1
                stmt = client.prepare(PREPARE_TEMPLATE)
                r = client.execute(stmt, PREPARE_PARAMS)
                if not r.ok or r.payload != expected[SMOKE_QUERIES[0]]:
                    with lock:
                        failures.append(
                            f"client {seed}: prepared execution did not "
                            f"match plain query bytes")
        except Exception as exc:  # noqa: BLE001 - report, don't hang CI
            with lock:
                failures.append(f"client {seed}: {type(exc).__name__}: "
                                f"{exc}")

    threads = [threading.Thread(target=client_main, args=(i,))
               for i in range(N_CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)

    with Client(host, port, binary=binary) as client:
        stats = client.stats()
    server.stop_background()

    total = N_CLIENTS * ROUNDS * len(SMOKE_QUERIES)
    if verbose:
        print(f"{done[0]}/{total} queries byte-identical to direct "
              f"execution")
        print(f"server.queries={stats.get('server.queries', 0):.0f} "
              f"cache hit rate={stats.get('server.cache.hit_rate', 0):.2f} "
              f"qps={stats.get('server.qps', 0):.0f}")
    if stats.get("server.queries", 0) < total:
        failures.append(
            f"server counted {stats.get('server.queries', 0):.0f} "
            f"queries, expected >= {total}")
    if failures:
        for f in failures:
            print("FAIL:", f, file=sys.stderr)
        return 1
    if done[0] != total:
        print(f"FAIL: only {done[0]}/{total} queries verified",
              file=sys.stderr)
        return 1
    print("server smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(run_smoke(binary="--binary" in sys.argv[1:]))
