"""repro.server — a concurrent PSQL query service.

The production shape of the paper's system: a *static, packed*
pictorial database (built once, Section 3.3) serving interactive PSQL
(Section 2) to many concurrent clients.  An asyncio TCP front end
frames a line protocol; CPU-bound search work runs on a worker pool; a
generation-checked LRU cache replays repeated queries; and the
``STATS`` command surfaces :mod:`repro.obs`-backed metrics — QPS, cache
hit rate, nodes visited, page I/O.

Pieces:

- :mod:`repro.server.protocol` — the wire format (frames, escaping,
  the canonical result encoding);
- :mod:`repro.server.service` — the worker pool (thread or process)
  executing queries against the shared database;
- :mod:`repro.server.cache` — the LRU result cache keyed on
  ``(normalized query, database generation)``;
- :mod:`repro.server.server` — the asyncio server: session manager,
  admission gate (``BUSY``), per-query timeout (``TIMEOUT``), error
  framing (``ERR``), graceful draining shutdown;
- :mod:`repro.server.client` — a blocking client;
- ``python -m repro.server`` — the CLI entrypoint (also installed as
  the ``repro-psql-server`` console script).

Quickstart::

    $ PYTHONPATH=src python -m repro.server --port 7751 &
    $ PYTHONPATH=src python - <<'EOF'
    from repro.server.client import Client
    with Client(port=7751) as c:
        print(c.query("select city from cities on us-map "
                      "at loc covered-by {400+-150, 300+-150}").rows)
        print({k: v for k, v in c.stats().items() if "cache" in k})
    EOF
"""

from repro.server.cache import QueryCache
from repro.server.client import Client
from repro.server.protocol import (
    DEFAULT_PORT,
    ProtocolError,
    Response,
    ServerBusyError,
    ServerError,
    ServerTimeoutError,
    encode_result,
)
from repro.server.server import PsqlServer, ServerConfig
from repro.server.service import QueryOutcome, QueryService

__all__ = [
    "Client",
    "DEFAULT_PORT",
    "ProtocolError",
    "PsqlServer",
    "QueryCache",
    "QueryOutcome",
    "QueryService",
    "Response",
    "ServerBusyError",
    "ServerConfig",
    "ServerError",
    "ServerTimeoutError",
    "encode_result",
]
