"""Query execution service: a worker pool over one shared database.

The server's event loop never executes PSQL itself — searches are
CPU-bound pure Python, so they run on a pool and the loop only frames
bytes.  Two pool flavours:

- ``"thread"`` (default): workers share the parent's
  :class:`~repro.relational.catalog.Database` object.  Correct under
  concurrent *reads* (in-memory trees are read-only during search; disk
  trees serialise page access through the now-locked
  :class:`~repro.storage.buffer.BufferPool`), and mutations performed
  between queries are immediately visible.  Throughput is bounded by
  the GIL.
- ``"process"``: workers are separate interpreters, each building an
  identical database from a **factory spec** at startup.  True CPU
  scaling for a read-only/static serving shape (the paper's packed
  database); parent-side mutations are *not* propagated to workers.

Either way a worker returns a plain :class:`QueryOutcome` — encoded
payload lines plus an isolated observability snapshot — which is cheap
to ship across a process boundary and trivial for the event loop to
merge into server-wide metrics.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.psql.errors import PsqlError
from repro.psql.executor import Session
from repro.psql.result import QueryResult
from repro.relational.catalog import Database
from repro.server import binproto, protocol
from repro.server.demo import DEFAULT_FACTORY_SPEC, resolve_factory
from repro.storage import HeapFileError, InjectedFault, PagerError, WalError

__all__ = ["QueryOutcome", "QueryService"]

#: Storage-stack failures a query can surface.  They are reported as a
#: framed ``ERR`` like any other failure — the connection survives and
#: the server counts them separately (``server.io_errors``) because an
#: I/O fault, unlike a bad query, is an operational signal.
STORAGE_ERRORS = (PagerError, WalError, HeapFileError, InjectedFault,
                  OSError)


@dataclass
class QueryOutcome:
    """What one worker produced for one query (always picklable)."""

    payload: tuple[str, ...] = ()      #: COLS/ROW*/END lines
    nrows: int = 0
    error_kind: str = ""               #: exception class name, "" on success
    error_message: str = ""
    counters: dict[str, float] = field(default_factory=dict)
    cancelled: bool = False            #: abandoned before execution began
    io_fault: bool = False             #: failure came from the storage stack
    #: binary-protocol result body (:func:`repro.server.binproto
    #: .encode_result_body`), produced alongside the text lines so the
    #: event loop and the result cache never re-encode
    bbody: bytes = b""

    @property
    def ok(self) -> bool:
        return not self.error_kind and not self.cancelled


def _outcome_from(execute: Callable[[], "QueryResult"]) -> QueryOutcome:
    """Run one query callable under an isolated obs scope; never raises.

    ``forward=False`` keeps the scoped registry off the global chain:
    worker threads record into thread-local scopes and the single
    event-loop thread merges the returned snapshots, so concurrent
    queries cannot interleave counters.  Both protocol renderings are
    produced here, once, while the result object is still alive.
    """
    try:
        with obs.scope(forward=False) as registry:
            result = execute()
            payload = tuple(protocol.encode_result(result))
            bbody = binproto.encode_result_body(result)
        return QueryOutcome(payload=payload, nrows=len(result.rows),
                            counters=dict(registry.snapshot()),
                            bbody=bbody)
    except PsqlError as exc:
        return QueryOutcome(error_kind=type(exc).__name__,
                            error_message=str(exc))
    except STORAGE_ERRORS as exc:
        # Disk trouble (corrupt page, injected fault, failed syscall) is
        # a graceful ERR frame, never a dead connection or worker.
        return QueryOutcome(error_kind=type(exc).__name__,
                            error_message=str(exc), io_fault=True)
    except Exception as exc:  # noqa: BLE001 - one bad query must never
        # take down a worker or leak an unframed exception to the socket.
        return QueryOutcome(error_kind=type(exc).__name__,
                            error_message=str(exc))


def _execute_to_outcome(session: Session, text: str) -> QueryOutcome:
    """Run one query text; see :func:`_outcome_from`."""
    return _outcome_from(lambda: session.execute(text))


# -- process-pool worker side -------------------------------------------------

_worker_session: Optional[Session] = None


def _init_process_worker(factory_spec: str) -> None:
    """Build this worker's private database from the factory spec."""
    global _worker_session
    db = resolve_factory(factory_spec)()
    _worker_session = Session(db)
    # Workers meter their queries through scoped registries; the flag
    # must be on in the worker process for call sites to record.
    obs.enable()


def _run_in_process_worker(text: str) -> QueryOutcome:
    assert _worker_session is not None, "worker initializer did not run"
    return _execute_to_outcome(_worker_session, text)


# -- the service --------------------------------------------------------------


class QueryService:
    """A worker pool executing PSQL text against one database.

    Args:
        db: the database to serve (thread mode).  When omitted, it is
            built by calling the resolved *factory_spec*.
        workers: pool size.
        executor: ``"thread"`` or ``"process"``.
        factory_spec: ``"module:callable"`` producing the database;
            required for process mode (workers rebuild it), optional for
            thread mode when *db* is given.
        session_factory: builds the per-connection
            :class:`~repro.psql.executor.Session` in thread mode —
            inject one to pre-register application pictorial functions.
        capture: attach a shared :class:`repro.advisor.QueryLog` to
            every session (thread mode only) so ``ADVISE`` has a
            workload to analyse.
    """

    def __init__(self, db: Optional[Database] = None, workers: int = 4,
                 executor: str = "thread",
                 factory_spec: str = DEFAULT_FACTORY_SPEC,
                 session_factory: Optional[
                     Callable[[Database], Session]] = None,
                 capture: bool = True):
        if workers < 1:
            raise ValueError("worker count must be positive")
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor kind {executor!r}; "
                             f"choose 'thread' or 'process'")
        if executor == "process" and db is not None:
            raise ValueError(
                "process mode builds databases from factory_spec; "
                "passing a live db object would silently diverge from "
                "what the workers serve")
        self.workers = workers
        self.executor_kind = executor
        self.factory_spec = factory_spec
        self.session_factory = session_factory or Session
        self.db = db if db is not None else resolve_factory(factory_spec)()
        # Workload capture for the advisor (ADVISE verb).  Thread mode
        # only: process workers execute in separate interpreters, so a
        # parent-side log would never see their queries.
        self.query_log = None
        if capture and executor == "thread":
            from repro.advisor import QueryLog
            self.query_log = QueryLog()
        self._pool: Optional[Executor] = None
        self._closed = False
        # The obs flag is process-global: turn it on for the service's
        # lifetime instead of racing per-query toggles across threads.
        self._obs_was_enabled = obs.ENABLED
        obs.enable()

    # -- pool lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Create (and for process pools, warm up) the worker pool."""
        if self._pool is not None:
            return
        if self.executor_kind == "thread":
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="psql-worker")
        else:
            import multiprocessing

            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_init_process_worker,
                initargs=(self.factory_spec,))
            # Force worker startup now (spawn + database build is slow);
            # serving-time latency should not pay for it.
            self._pool.submit(_noop).result()

    @property
    def generation(self) -> int:
        return self.db.generation

    def make_session(self) -> Session:
        """A fresh per-connection session (thread mode)."""
        session = self.session_factory(self.db)
        if self.query_log is not None:
            session.query_log = self.query_log
        return session

    def submit(self, session: Session, text: str):
        """Submit one query; returns the ``concurrent.futures.Future``.

        The future resolves to a :class:`QueryOutcome`.  A
        ``cancel_event`` set before the worker picks the task up makes
        it return a cancelled outcome without executing — the timeout
        path uses this so an abandoned-but-unstarted query does not
        burn a worker slot.
        """
        if self._pool is None:
            self.start()
        assert self._pool is not None
        if self.executor_kind == "process":
            return self._pool.submit(_run_in_process_worker, text)
        cancel_event = threading.Event()

        def run() -> QueryOutcome:
            if cancel_event.is_set():
                return QueryOutcome(cancelled=True)
            return _execute_to_outcome(session, text)

        future = self._pool.submit(run)
        future.cancel_event = cancel_event  # type: ignore[attr-defined]
        return future

    def submit_prepared(self, session: Session, statement_id: int,
                        params: tuple[str, ...], substituted: str):
        """Submit one prepared-statement execution; returns the future.

        Thread mode runs :meth:`Session.execute_prepared` — the bound
        AST is memoized per parameter set, so repeats skip the parser
        and hit the plan cache.  Process workers hold private sessions
        that never saw the PREPARE, so they fall back to executing the
        pre-substituted text as a plain query (same results, full parse).
        """
        if self._pool is None:
            self.start()
        assert self._pool is not None
        if self.executor_kind == "process":
            return self._pool.submit(_run_in_process_worker, substituted)
        cancel_event = threading.Event()

        def run() -> QueryOutcome:
            if cancel_event.is_set():
                return QueryOutcome(cancelled=True)
            return _outcome_from(
                lambda: session.execute_prepared(statement_id, params))

        future = self._pool.submit(run)
        future.cancel_event = cancel_event  # type: ignore[attr-defined]
        return future

    def rebuild_index(self, picture: str, relation: str,
                      column: str = "loc", method: Optional[str] = None,
                      workers: int = 0) -> int:
        """Offline index rebuild (the ``REPACK`` verb); thread mode only.

        Runs :meth:`~repro.relational.catalog.Database.rebuild_index`
        against the shared database.  Process-pool workers each hold a
        *private* database built from the factory spec, so a parent-side
        rebuild would silently diverge from what they serve — refuse it.

        Raises:
            ValueError: in process-executor mode.
        """
        if self.executor_kind == "process":
            raise ValueError(
                "REPACK is not available with the process executor: "
                "workers serve private database copies that an offline "
                "rebuild in the parent would not update")
        return self.db.rebuild_index(picture, relation, column=column,
                                     method=method, workers=workers)

    def execute_direct(self, text: str) -> QueryOutcome:
        """Run one query synchronously on the calling thread."""
        return _execute_to_outcome(self.make_session(), text)

    def close(self, wait: bool = True) -> None:
        """Shut the pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None
        if not self._obs_was_enabled:
            obs.disable()

    def __enter__(self) -> "QueryService":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _noop() -> None:
    """Pool warm-up task."""
