"""The background repack daemon: a scheduler around the maintenance loop.

The advisor (PR 7) left one loose end: a sustained packing-degradation
WARN produced a recommendation, but a human still had to issue REPACK.
:class:`MaintenanceScheduler` closes that loop inside the server — a
daemon thread periodically runs
:func:`repro.rtree.maintenance.run_maintenance_cycle` against the served
catalog, incrementally re-packing whichever subtrees the
coverage/overlap signal says have decayed (Section 3.4's update
problem).

The scheduler is deliberately dumb about concurrency: each repack goes
through ``Database.repack``, which serialises against queries at the
index's own lock (:class:`~repro.relational.diskindex.DiskSpatialIndex`)
and bumps the catalog generation; the server's post-cycle hook then
drops stale result-cache entries.  Thread-executor servers only —
process workers hold their own catalog copies, which background repacks
here would never reach (the same restriction as online ``REPACK``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from repro import obs
from repro.rtree.maintenance import (
    MaintenanceAction,
    MaintenanceConfig,
    run_maintenance_cycle,
)

__all__ = ["MaintenanceScheduler"]


class MaintenanceScheduler:
    """Periodic maintenance cycles on a daemon thread.

    Args:
        db: the catalog to maintain.
        config: thresholds forwarded to the maintenance loop.
        interval: seconds between cycle starts while enabled.
        enabled: start in the enabled state.
        on_cycle: called (on the scheduler thread) after every cycle
            with the action list — the server uses it to invalidate
            result caches when a repack bumped the generation.
    """

    def __init__(self, db: Any,
                 config: MaintenanceConfig = MaintenanceConfig(),
                 interval: float = 30.0, enabled: bool = False,
                 on_cycle: Optional[
                     Callable[[list[MaintenanceAction]], None]] = None):
        self.db = db
        self.config = config
        self.interval = max(0.05, float(interval))
        self.on_cycle = on_cycle
        self._enabled = threading.Event()
        if enabled:
            self._enabled.set()
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self.cycles = 0
        self.repacks = 0
        self.last_actions: list[MaintenanceAction] = []
        self.last_cycle_at: Optional[float] = None
        self.last_error: Optional[str] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the daemon thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run,
                                        name="psql-maintenance",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the thread; a cycle in flight finishes first."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    # -- control ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled.is_set()

    def enable(self) -> None:
        self._enabled.set()
        self._wake.set()  # don't wait a full interval for the first cycle

    def disable(self) -> None:
        self._enabled.clear()

    def run_now(self) -> list[MaintenanceAction]:
        """One synchronous cycle (for ``MAINTAIN run``, tests, the REPL)."""
        return self._cycle()

    # -- reporting ----------------------------------------------------------

    def status_lines(self) -> list[str]:
        """Human-readable status, one string per line."""
        with self._lock:
            lines = [
                f"maintenance: {'on' if self.enabled else 'off'} "
                f"(interval {self.interval:g}s, warn "
                f">={self.config.warn_ratio:g}x, full "
                f">={self.config.full_ratio:g}x)",
                f"cycles: {self.cycles}, repacks: {self.repacks}",
            ]
            if self.last_cycle_at is not None:
                age = time.monotonic() - self.last_cycle_at
                lines.append(f"last cycle: {age:.1f}s ago")
                lines.extend("  " + a.describe() for a in self.last_actions)
            if self.last_error is not None:
                lines.append(f"last error: {self.last_error}")
        return lines

    # -- internals ----------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            if not self._enabled.is_set():
                continue
            try:
                self._cycle()
            except Exception as exc:  # noqa: BLE001 - daemon must survive
                with self._lock:
                    self.last_error = f"{type(exc).__name__}: {exc}"
                if obs.ENABLED:
                    obs.active().bump("server.maintenance.errors")

    def _cycle(self) -> list[MaintenanceAction]:
        actions = run_maintenance_cycle(self.db, self.config)
        with self._lock:
            self.cycles += 1
            self.repacks += sum(1 for a in actions if a.kind != "none")
            self.last_actions = actions
            self.last_cycle_at = time.monotonic()
            self.last_error = None
        if self.on_cycle is not None:
            self.on_cycle(actions)
        return actions
