"""The asyncio PSQL query server.

One event loop owns all connection framing, the admission gate, the
result cache and the metrics registry; CPU work happens on the
:class:`~repro.server.service.QueryService` pool.  The control flow for
one ``QUERY`` line:

1. normalise the text (a lexer error becomes an ``ERR`` frame, nothing
   is submitted);
2. consult the LRU cache under ``(normalized, generation)`` — a hit is
   streamed back without touching the pool;
3. admission gate: if ``max_inflight`` queries already occupy the pool,
   answer ``BUSY`` *now* instead of queueing unboundedly (shed load at
   the edge; the client can back off and retry);
4. submit, await with the per-query timeout; a timeout answers
   ``TIMEOUT`` and abandons the task (cancelled outright if it has not
   started; a running worker finishes and its slot frees then — the
   gate tracks *actual* occupancy, so backpressure stays truthful);
5. stream the framed result, cache it, and fold the worker's isolated
   observability snapshot into the server-wide registry.

Every response is ``END``-terminated, so one bad query never
desynchronises or kills a connection.  Shutdown is graceful: the
listener closes first, in-flight queries drain (bounded by
``drain_timeout``), then connections are torn down.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.psql.errors import PsqlError
from repro.psql.executor import Session
from repro.psql.normalize import normalize_query
from repro.psql.prepare import PreparedStatement
from repro.relational.catalog import Database
from repro.server import binproto, protocol
from repro.server.cache import QueryCache
from repro.server.service import STORAGE_ERRORS, QueryService
from repro import obs

__all__ = ["PsqlServer", "ServerConfig"]


@dataclass
class ServerConfig:
    """Everything a :class:`PsqlServer` needs to run."""

    host: str = "127.0.0.1"
    port: int = protocol.DEFAULT_PORT    #: 0 picks an ephemeral port
    workers: int = 4
    executor: str = "thread"             #: "thread" or "process"
    max_inflight: int = 0                #: 0 = 2 * workers
    query_timeout: float = 30.0          #: seconds; <= 0 disables
    cache_size: int = 256                #: 0 disables the result cache
    drain_timeout: float = 10.0          #: graceful-shutdown bound
    factory_spec: str = "repro.server.demo:demo_database"
    capture: bool = True                 #: workload capture for ADVISE
    maintenance: bool = False            #: start the repack daemon enabled
    maintenance_interval: float = 30.0   #: seconds between daemon cycles

    def effective_max_inflight(self) -> int:
        return self.max_inflight if self.max_inflight > 0 \
            else 2 * self.workers


@dataclass
class _Connection:
    """Per-connection state the session manager tracks."""

    session_id: int
    peer: str
    session: Session
    writer: asyncio.StreamWriter
    queries: int = 0
    errors: int = 0
    opened_at: float = field(default_factory=time.monotonic)
    #: negotiated the binary protocol via ``HELLO bin``
    binary: bool = False
    #: prepared statements by id (shared objects with the session)
    prepared: dict[int, PreparedStatement] = field(default_factory=dict)


class PsqlServer:
    """A concurrent PSQL query server over one pictorial database.

    Args:
        config: server parameters.
        db: the database to serve; omit to build one from
            ``config.factory_spec`` (required anyway for process mode).
        session_factory: per-connection session builder (thread mode),
            e.g. to pre-register application pictorial functions.

    Use :meth:`serve_forever` from ``asyncio.run`` (the CLI does), or
    :meth:`start_background` to run the whole loop on a daemon thread —
    which is how the tests and the throughput benchmark embed it.
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 db: Optional[Database] = None,
                 session_factory=None):
        self.config = config or ServerConfig()
        self.service = QueryService(
            db=db, workers=self.config.workers,
            executor=self.config.executor,
            factory_spec=self.config.factory_spec,
            session_factory=session_factory,
            capture=self.config.capture)
        self.cache = QueryCache(capacity=self.config.cache_size)
        self.registry = obs.Registry()
        self.port: Optional[int] = None
        self._asyncio_server: Optional[asyncio.base_events.Server] = None
        self._connections: dict[int, _Connection] = {}
        self._next_session_id = 1
        self._inflight = 0
        self._active_responses = 0
        self._draining = False
        # Background repack daemon (thread-executor servers only; the
        # process pool's workers hold their own catalog copies).
        self.scheduler = None
        if self.config.executor == "thread":
            from repro.server.scheduler import MaintenanceScheduler
            self.scheduler = MaintenanceScheduler(
                self.service.db,
                interval=self.config.maintenance_interval,
                enabled=self.config.maintenance,
                on_cycle=self._after_maintenance_cycle)
        self._started_at = time.monotonic()
        # Background-thread plumbing (start_background/stop_background).
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_ready = threading.Event()
        self._thread_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and warm the worker pool."""
        self.service.start()
        if self.scheduler is not None:
            self.scheduler.start()
        self._started_at = time.monotonic()
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        self.port = self._asyncio_server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Start and serve until cancelled (then drain gracefully)."""
        await self.start()
        assert self._asyncio_server is not None
        try:
            await self._asyncio_server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, tear down."""
        self._draining = True
        if self.scheduler is not None:
            await asyncio.to_thread(self.scheduler.stop)
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        # Drain: in-flight queries (and the responses being written for
        # them) get up to drain_timeout to finish.
        deadline = time.monotonic() + self.config.drain_timeout
        while ((self._inflight or self._active_responses)
               and time.monotonic() < deadline):
            await asyncio.sleep(0.01)
        for conn in list(self._connections.values()):
            conn.writer.close()
        self._connections.clear()
        self.service.close(wait=False)

    # -- background-thread embedding ---------------------------------------

    def start_background(self, timeout: float = 30.0,
                         ) -> tuple[str, int]:
        """Run the server's event loop on a daemon thread.

        Returns ``(host, port)`` once the listener is bound — with
        ``config.port = 0`` this is how callers learn the ephemeral
        port.  Pair with :meth:`stop_background`.
        """
        if self._thread is not None:
            raise RuntimeError("server already running in background")
        self._thread = threading.Thread(target=self._thread_main,
                                        name="psql-server", daemon=True)
        self._thread.start()
        if not self._thread_ready.wait(timeout):
            raise RuntimeError("server failed to start within timeout")
        if self._thread_error is not None:
            raise RuntimeError("server failed to start") \
                from self._thread_error
        assert self.port is not None
        return self.config.host, self.port

    def stop_background(self, timeout: float = 30.0) -> None:
        """Signal the background loop to drain and stop; join the thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop_requested is not None:
            loop, stop = self._loop, self._stop_requested
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)
        self._thread = None

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve_until_stopped())
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            self._thread_error = exc
            self._thread_ready.set()

    async def _serve_until_stopped(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        try:
            await self.start()
        except BaseException as exc:  # noqa: BLE001
            self._thread_error = exc
            self._thread_ready.set()
            return
        self._thread_ready.set()
        await self._stop_requested.wait()
        await self.stop()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        sid = self._next_session_id
        self._next_session_id += 1
        peername = writer.get_extra_info("peername")
        conn = _Connection(
            session_id=sid,
            peer=str(peername) if peername else "?",
            session=self.service.make_session(),
            writer=writer)
        self._connections[sid] = conn
        self.registry.bump("server.sessions.opened")
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                verb, _, rest = text.partition(" ")
                verb = verb.upper()
                if verb == "QUIT":
                    await self._write_lines(
                        conn, [protocol.BYE, protocol.END])
                    break
                if not await self._dispatch(conn, verb, rest):
                    await self._write_error(
                        conn, "ProtocolError",
                        f"unknown command {verb!r} "
                        f"(try {'/'.join(self.verbs())})")
                if conn.binary:
                    # HELLO bin was acknowledged in text; every byte
                    # from here on is length-prefixed binary framing.
                    await self._binary_loop(conn, reader)
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.pop(sid, None)
            self.registry.bump("server.sessions.closed")
            writer.close()

    # -- verb dispatch -------------------------------------------------------

    def verbs(self) -> tuple[str, ...]:
        """The command verbs this server answers (for error messages)."""
        return ("QUERY", "EXPLAIN", "PREPARE", "EXECUTE", "REPACK",
                "MAINTAIN", "ADVISE", "HEALTH", "STATS", "PING", "HELLO",
                "QUIT")

    async def _dispatch(self, conn: _Connection, verb: str,
                        rest: str) -> bool:
        """Handle one framed command; False means the verb is unknown.

        The extension point for role-specific servers: the cluster's
        shard and replica servers override this to add verbs (INSERT,
        DELETE, KNN, REPLAY) and to gate mutations by role, falling
        back here for the base protocol.
        """
        if verb == "QUERY":
            await self._handle_query(conn, rest)
        elif verb == "EXPLAIN":
            # EXPLAIN [ANALYZE] <query> — same pipeline as QUERY
            # (normalisation, cache, admission, framing); the
            # session turns the plan into a one-column result.
            await self._handle_query(conn, "explain " + rest)
        elif verb == "PREPARE":
            await self._handle_prepare(conn, rest)
        elif verb == "EXECUTE":
            await self._handle_execute_line(conn, rest)
        elif verb == "REPACK":
            await self._handle_repack(conn, rest)
        elif verb == "MAINTAIN":
            await self._handle_maintain(conn, rest)
        elif verb == "ADVISE":
            await self._handle_advise(conn, rest)
        elif verb == "HEALTH":
            await self._handle_health(conn)
        elif verb in ("STATS", "METRICS"):
            await self._reply_stats(conn)
        elif verb == "PING":
            await self._reply_pong(conn)
        elif verb == "HELLO":
            await self._handle_hello(conn, rest)
        else:
            return False
        return True

    # -- protocol negotiation -------------------------------------------------

    async def _handle_hello(self, conn: _Connection, rest: str) -> None:
        """``HELLO [bin|text]`` — per-connection protocol negotiation.

        The acknowledgement always travels in the *current* framing;
        with ``bin`` the connection switches to length-prefixed binary
        frames immediately after it.  Old servers answer ``ERR`` here,
        which a client treats as "stay on text".
        """
        if conn.binary:
            await self._write_error(conn, "ProtocolError",
                                    "protocol already negotiated")
            return
        mode = rest.strip().lower() or "text"
        if mode not in ("bin", "binary", "text"):
            await self._write_error(conn, "ProtocolError",
                                    "usage: HELLO [bin|text]")
            return
        await self._write_lines(
            conn,
            [f"{protocol.OK} hello {self.generation} 0", protocol.END])
        conn.binary = mode != "text"
        if conn.binary:
            self.registry.bump("server.sessions.binary")

    async def _binary_loop(self, conn: _Connection,
                           reader: asyncio.StreamReader) -> None:
        """Serve length-prefixed binary frames until EOF or QUIT.

        A malformed frame *body* (unknown opcode, truncated struct, bad
        UTF-8) is answered with an ``ERR`` frame and the loop continues:
        the length prefix was consumed exactly, so framing stays in
        sync.  Only an implausible length prefix tears the connection
        down — at that point the stream position cannot be trusted.
        """
        while True:
            try:
                prefix = await reader.readexactly(4)
            except asyncio.IncompleteReadError:
                return
            length = int.from_bytes(prefix, "little")
            if length == 0 or length > binproto.MAX_FRAME:
                await self._write_error(
                    conn, "ProtocolError",
                    f"implausible frame length {length}; closing")
                return
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return
            try:
                opcode, payload = binproto.decode_request(body)
                if opcode == binproto.OP_QUERY:
                    await self._handle_query(conn,
                                             payload.decode("utf-8"))
                elif opcode == binproto.OP_PREPARE:
                    await self._handle_prepare(conn,
                                               payload.decode("utf-8"))
                elif opcode == binproto.OP_EXECUTE:
                    statement_id, params = binproto.decode_execute(payload)
                    await self._handle_execute(conn, statement_id, params)
                elif opcode == binproto.OP_STATS:
                    await self._reply_stats(conn)
                elif opcode == binproto.OP_PING:
                    await self._reply_pong(conn)
                elif opcode == binproto.OP_QUIT:
                    await self._reply_bye(conn)
                    return
                elif opcode == binproto.OP_COMMAND:
                    text = payload.decode("utf-8").strip()
                    if not text:
                        continue
                    verb, _, rest = text.partition(" ")
                    verb = verb.upper()
                    if verb == "QUIT":
                        await self._reply_bye(conn)
                        return
                    if not await self._dispatch(conn, verb, rest):
                        await self._write_error(
                            conn, "ProtocolError",
                            f"unknown command {verb!r} "
                            f"(try {'/'.join(self.verbs())})")
                else:
                    await self._write_error(conn, "ProtocolError",
                                            f"unknown opcode {opcode}")
            except (protocol.ProtocolError, UnicodeDecodeError) as exc:
                conn.errors += 1
                self.registry.bump("server.errors")
                await self._write_error(conn, "ProtocolError", str(exc))

    # -- the QUERY path ------------------------------------------------------

    async def _handle_query(self, conn: _Connection, text: str) -> None:
        conn.queries += 1
        self.registry.bump("server.queries")
        try:
            normalized = normalize_query(text)
        except PsqlError as exc:
            await self._write_error(conn, type(exc).__name__, str(exc))
            return
        log_text = (None if normalized.startswith("explain ")
                    else normalized)
        await self._run_query_job(
            conn, normalized,
            lambda: self.service.submit(conn.session, text),
            log_text=log_text)

    async def _run_query_job(self, conn: _Connection, cache_key,
                             submit, log_text: Optional[str] = None,
                             ) -> None:
        """The shared cache/admission/submit/reply tail of a query.

        *cache_key* is any hashable — normalized text for QUERY, a
        ``(template, params)`` tuple for EXECUTE.  *submit* is a
        zero-argument callable returning the service future; it is only
        invoked on a cache miss that passes the admission gate.
        *log_text* (when given) records cache hits in the workload log —
        executed calls are recorded by the session itself.
        """
        generation = self.generation
        cached = self.cache.get(cache_key, generation)
        if cached is not None:
            self.registry.bump("server.queries.cached")
            self.registry.bump("server.rows_returned", cached.nrows)
            log = self.service.query_log
            if log_text is not None and log is not None and log.enabled:
                # Executed calls are recorded by the session; cache hits
                # never reach a session, so the workload log hears about
                # them here (call count only — nothing executed).
                log.record_cached(log_text, cached.nrows)
            await self._reply_result(conn, "cached", generation,
                                     cached.nrows, cached.payload,
                                     cached.bbody)
            return

        if self._draining:
            await self._write_error(conn, "ServerError",
                                    "server is shutting down")
            return
        if self._inflight >= self.config.effective_max_inflight():
            self.registry.bump("server.busy_rejections")
            await self._reply_busy(
                conn,
                f"{self._inflight} queries in flight "
                f"(limit {self.config.effective_max_inflight()}); "
                f"retry later")
            return

        loop = asyncio.get_running_loop()
        self._inflight += 1
        future = submit()
        future.add_done_callback(
            lambda _f: loop.call_soon_threadsafe(self._release_slot))
        timeout = self.config.query_timeout
        try:
            outcome = await asyncio.wait_for(
                asyncio.wrap_future(future),
                timeout if timeout > 0 else None)
        except asyncio.TimeoutError:
            # Abandon: a not-yet-started task is cancelled outright (the
            # done callback releases the slot); a running one keeps its
            # slot until it actually finishes — that is the truthful
            # admission-control signal.
            cancel_event = getattr(future, "cancel_event", None)
            if cancel_event is not None:
                cancel_event.set()
            future.cancel()
            self.registry.bump("server.timeouts")
            await self._reply_timeout(conn, f"query exceeded {timeout:g}s")
            return
        except asyncio.CancelledError:
            future.cancel()
            raise

        if outcome.cancelled:
            # Raced a shutdown/cancel before starting; treat as shed load.
            self.registry.bump("server.busy_rejections")
            await self._reply_busy(conn, "cancelled before execution")
            return
        if not outcome.ok:
            conn.errors += 1
            self.registry.bump("server.errors")
            if outcome.io_fault:
                self.registry.bump("server.io_errors")
            await self._write_error(conn, outcome.error_kind,
                                    outcome.error_message)
            return

        self.registry.counters.merge(outcome.counters)
        self.registry.bump("server.queries.executed")
        self.registry.bump("server.rows_returned", outcome.nrows)
        self.cache.put(cache_key, generation, outcome.payload,
                       outcome.nrows, outcome.bbody)
        await self._reply_result(conn, "fresh", generation, outcome.nrows,
                                 outcome.payload, outcome.bbody)

    def _release_slot(self) -> None:
        self._inflight -= 1

    # -- the PREPARE / EXECUTE path -------------------------------------------

    async def _handle_prepare(self, conn: _Connection,
                              template: str) -> None:
        """``PREPARE <template>`` — register a ``?``-placeholder query.

        Nothing is parsed yet (a bare ``?`` is not valid PSQL); the
        response carries the statement id in the header's count field:
        ``OK prepare <generation> <statement-id>``.
        """
        template = template.strip()
        if not template:
            await self._write_error(conn, "ProtocolError",
                                    "usage: PREPARE <query template>")
            return
        stmt = conn.session.prepare(template)
        conn.prepared[stmt.statement_id] = stmt
        self.registry.bump("server.prepares")
        await self._reply_prepared(conn, stmt)

    async def _handle_execute_line(self, conn: _Connection,
                                   rest: str) -> None:
        """``EXECUTE <id> <tab-separated escaped params>`` (text form).

        Parameters are tab-separated and escaped exactly like row
        fields.  (The line framing strips trailing whitespace, so a
        *trailing* empty parameter needs the binary protocol, which
        length-prefixes every parameter.)
        """
        head, _, params_text = rest.partition(" ")
        try:
            statement_id = int(head)
        except ValueError:
            await self._write_error(
                conn, "ProtocolError",
                "usage: EXECUTE <statement-id> [params]")
            return
        try:
            params = (tuple(protocol.unescape(p)
                            for p in params_text.split("\t"))
                      if params_text else ())
        except protocol.ProtocolError as exc:
            await self._write_error(conn, "ProtocolError", str(exc))
            return
        await self._handle_execute(conn, statement_id, params)

    async def _handle_execute(self, conn: _Connection, statement_id: int,
                              params: tuple[str, ...]) -> None:
        """Bind + run one prepared execution through the QUERY pipeline.

        The result cache is keyed on ``(template, params)`` directly —
        no :func:`normalize_query` lexer pass — which is what makes a
        cached prepared read the cheapest request the server answers.
        Cache hits are not recorded in the workload log for the same
        reason (fingerprinting would re-tokenise the text).
        """
        conn.queries += 1
        self.registry.bump("server.queries")
        self.registry.bump("server.executes")
        stmt = conn.prepared.get(statement_id)
        if stmt is None:
            await self._write_error(
                conn, "PsqlError",
                f"unknown prepared statement {statement_id}")
            return
        if len(params) != stmt.nparams:
            await self._write_error(
                conn, "PsqlError",
                f"prepared statement {statement_id} takes "
                f"{stmt.nparams} parameter(s), got {len(params)}")
            return
        # A tuple key: no string building per request, and structurally
        # distinct from every normalize_query() text key.
        cache_key = (stmt.text, params)
        await self._run_query_job(
            conn, cache_key,
            lambda: self.service.submit_prepared(
                conn.session, statement_id, params,
                stmt.substitute(params)))

    # -- the REPACK path -----------------------------------------------------

    async def _handle_repack(self, conn: _Connection, rest: str) -> None:
        """``REPACK <picture> <relation> [column]`` — offline rebuild.

        The rebuild runs on a plain thread (it is long, I/O-heavy and
        must not occupy a query-pool slot or the event loop); queries
        keep flowing meanwhile and only block briefly at the atomic
        swap.  On success the response is ``OK repack <generation>
        <entries>``, where *generation* is the post-bump value every
        later cache entry will be keyed on.
        """
        parts = rest.split()
        if len(parts) not in (2, 3):
            await self._write_error(
                conn, "ProtocolError",
                "usage: REPACK <picture> <relation> [column]")
            return
        picture, relation = parts[0], parts[1]
        column = parts[2] if len(parts) == 3 else "loc"
        if self._draining:
            await self._write_error(conn, "ServerError",
                                    "server is shutting down")
            return
        self.registry.bump("server.repacks")
        try:
            entries = await asyncio.to_thread(
                self.service.rebuild_index, picture, relation, column)
        except (KeyError, ValueError) as exc:
            self.registry.bump("server.errors")
            await self._write_error(conn, type(exc).__name__,
                                    str(exc).strip("'\""))
            return
        except STORAGE_ERRORS as exc:
            conn.errors += 1
            self.registry.bump("server.errors")
            self.registry.bump("server.io_errors")
            await self._write_error(conn, type(exc).__name__, str(exc))
            return
        generation = self.generation
        dropped = self.cache.drop_stale(generation)
        self.registry.bump("server.repacks.completed")
        self.registry.bump("server.cache.repack_dropped", dropped)
        await self._reply_ack(conn, "repack", generation, entries)

    async def _handle_maintain(self, conn: _Connection, rest: str) -> None:
        """``MAINTAIN [on|off|status|run]`` — the background repack daemon.

        ``on``/``off`` toggle the scheduler and answer ``OK maintain
        <generation> <enabled>``; ``status`` (the default) and ``run``
        (one synchronous cycle, useful in tests and benchmarks) answer a
        one-column report, so the cluster router can merge per-shard
        sections the way it does for ADVISE/HEALTH.
        """
        action = rest.strip().lower() or "status"
        if action not in ("on", "off", "status", "run"):
            await self._write_error(conn, "ProtocolError",
                                    "usage: MAINTAIN [on|off|status|run]")
            return
        if self.scheduler is None:
            await self._write_error(
                conn, "ValueError",
                "maintenance requires the thread executor (process "
                "workers hold their own catalog copies)")
            return
        self.registry.bump("server.maintains")
        if action == "on":
            self.scheduler.enable()
            await self._reply_ack(conn, "maintain", self.generation, 1)
        elif action == "off":
            self.scheduler.disable()
            await self._reply_ack(conn, "maintain", self.generation, 0)
        elif action == "run":
            if self._draining:
                await self._write_error(conn, "ServerError",
                                        "server is shutting down")
                return
            try:
                actions = await asyncio.to_thread(self.scheduler.run_now)
            except Exception as exc:  # noqa: BLE001 - framed, never fatal
                self.registry.bump("server.errors")
                await self._write_error(conn, type(exc).__name__, str(exc))
                return
            lines = [a.describe() for a in actions] or ["no indexes"]
            await self._write_report(conn, "maintain", lines)
        else:
            await self._write_report(conn, "maintain",
                                     self.scheduler.status_lines())

    def _after_maintenance_cycle(self, actions) -> None:
        """Post-cycle hook (scheduler thread): invalidate stale results.

        A repack bumped the catalog generation, so everything the result
        cache holds for older generations is structure-stale; both the
        cache and registry are lock-protected, making this safe off the
        event loop.
        """
        repacked = sum(1 for a in actions if a.kind != "none")
        if not repacked:
            return
        dropped = self.cache.drop_stale(self.generation)
        self.registry.bump("server.maintenance.repacks", repacked)
        self.registry.bump("server.cache.repack_dropped", dropped)

    # -- the ADVISE / HEALTH paths -------------------------------------------

    async def _handle_advise(self, conn: _Connection, rest: str) -> None:
        """``ADVISE [top]`` — workload analysis + ranked recommendations.

        Replanning the captured workload against hypothetical catalogs
        is CPU work, so it runs on a plain thread like REPACK; the
        report travels as a one-column result so every client and the
        cluster router handle it like any other rows.
        """
        rest = rest.strip()
        top = 20
        if rest:
            try:
                top = int(rest)
            except ValueError:
                top = -1
            if top < 1:
                await self._write_error(conn, "ProtocolError",
                                        "usage: ADVISE [top-n]")
                return
        self.registry.bump("server.advises")
        try:
            lines = await asyncio.to_thread(self._advise_lines, top)
        except Exception as exc:  # noqa: BLE001 - framed, never fatal
            self.registry.bump("server.errors")
            await self._write_error(conn, type(exc).__name__, str(exc))
            return
        await self._write_report(conn, "advise", lines)

    def _advise_lines(self, top: int) -> list[str]:
        from repro.advisor import advise, format_advise
        log = self.service.query_log
        if log is None:
            return ["workload capture is disabled on this server "
                    "(process executor or capture=False); "
                    "nothing to advise on"]
        return format_advise(advise(self.service.db, log, top=top))

    async def _handle_health(self, conn: _Connection) -> None:
        """``HEALTH`` — graded checks over live stats and the catalog."""
        self.registry.bump("server.healths")
        stats = self.stats()
        try:
            lines = await asyncio.to_thread(self._health_lines, stats)
        except Exception as exc:  # noqa: BLE001 - framed, never fatal
            self.registry.bump("server.errors")
            await self._write_error(conn, type(exc).__name__, str(exc))
            return
        await self._write_report(conn, "health", lines)

    def _health_lines(self, stats: dict[str, float]) -> list[str]:
        from repro.advisor import format_health, run_health_checks
        return format_health(run_health_checks(self.service.db,
                                               stats=stats))

    async def _write_report(self, conn: _Connection, column: str,
                            lines: list[str]) -> None:
        """Frame report *lines* as a fresh one-column result."""
        from repro.psql.result import QueryResult

        result = QueryResult(columns=(column,))
        result.rows = [(line,) for line in lines]
        await self._reply_result(
            conn, "fresh", self.generation, len(lines),
            tuple(protocol.encode_result(result)),
            binproto.encode_result_body(result))

    # -- frame writing (mode-aware) ------------------------------------------

    async def _write_lines(self, conn: _Connection,
                           lines: list[str] | tuple[str, ...]) -> None:
        self._active_responses += 1
        try:
            conn.writer.write(("\n".join(lines) + "\n").encode("utf-8"))
            await conn.writer.drain()
        finally:
            self._active_responses -= 1

    async def _write_bytes(self, conn: _Connection, data: bytes) -> None:
        self._active_responses += 1
        try:
            conn.writer.write(data)
            await conn.writer.drain()
        finally:
            self._active_responses -= 1

    async def _reply_result(self, conn: _Connection, disposition: str,
                            generation: int, nrows: int,
                            payload: tuple[str, ...],
                            bbody: bytes) -> None:
        """One OK-with-result response in whichever framing *conn* uses.

        The binary path writes prefix, header and cached body as three
        buffer appends — the body bytes are never copied or re-encoded.
        """
        if conn.binary:
            header = binproto.ok_header(disposition, generation, nrows)
            self._active_responses += 1
            try:
                writer = conn.writer
                writer.write(binproto.frame_prefix(len(header)
                                                   + len(bbody)))
                writer.write(header)
                writer.write(bbody)
                await writer.drain()
            finally:
                self._active_responses -= 1
            return
        header = f"{protocol.OK} {disposition} {generation} {nrows}"
        await self._write_lines(conn, [header, *payload])

    async def _reply_ack(self, conn: _Connection, disposition: str,
                         generation: int, count: int) -> None:
        if conn.binary:
            await self._write_bytes(
                conn, binproto.response_ack(disposition, generation, count))
            return
        await self._write_lines(
            conn,
            [f"{protocol.OK} {disposition} {generation} {count}",
             protocol.END])

    async def _reply_prepared(self, conn: _Connection,
                              stmt: PreparedStatement) -> None:
        if conn.binary:
            await self._write_bytes(
                conn, binproto.response_prepared(
                    self.generation, stmt.statement_id, stmt.nparams))
            return
        await self._reply_ack(conn, "prepare", self.generation,
                              stmt.statement_id)

    async def _reply_busy(self, conn: _Connection, message: str) -> None:
        if conn.binary:
            await self._write_bytes(conn, binproto.response_busy(message))
            return
        await self._write_lines(
            conn,
            [f"{protocol.BUSY} " + protocol.escape(message),
             protocol.END])

    async def _reply_timeout(self, conn: _Connection,
                             message: str) -> None:
        if conn.binary:
            await self._write_bytes(conn,
                                    binproto.response_timeout(message))
            return
        await self._write_lines(
            conn,
            [f"{protocol.TIMEOUT} " + protocol.escape(message),
             protocol.END])

    async def _reply_pong(self, conn: _Connection) -> None:
        if conn.binary:
            await self._write_bytes(conn, binproto.response_pong())
            return
        await self._write_lines(conn, [protocol.PONG, protocol.END])

    async def _reply_bye(self, conn: _Connection) -> None:
        if conn.binary:
            await self._write_bytes(conn, binproto.response_bye())
            return
        await self._write_lines(conn, [protocol.BYE, protocol.END])

    async def _reply_stats(self, conn: _Connection) -> None:
        if conn.binary:
            stats = dict(self.stats())
            stats["server.generation"] = int(self.generation)
            await self._write_bytes(conn, binproto.response_stats(stats))
            return
        await self._write_lines(
            conn, protocol.encode_stats(self.stats(),
                                        generation=self.generation))

    async def _write_error(self, conn: _Connection, kind: str,
                           message: str) -> None:
        if conn.binary:
            await self._write_bytes(conn,
                                    binproto.response_error(kind, message))
            return
        await self._write_lines(
            conn,
            [f"{protocol.ERR} {kind} {protocol.escape(message)}",
             protocol.END])

    # -- metrics -------------------------------------------------------------

    @property
    def generation(self) -> int:
        return self.service.generation

    def stats(self) -> dict[str, float]:
        """The ``STATS`` payload: server counters + derived + obs totals.

        Server-wide figures (queries, QPS, cache hit rate, sessions,
        backpressure events) live under ``server.*``; the merged
        per-query observability snapshots surface the engine-level
        totals — ``rtree.search.nodes_visited``, ``storage.buffer.*``
        page I/O and friends — plus ``avg.*`` per-executed-query rates
        for the paper's favourite metric, nodes visited per query.
        """
        uptime = max(time.monotonic() - self._started_at, 1e-9)
        out: dict[str, float] = {}
        # Integer counters stay ints: the text protocol renders them
        # without a fractional part and the binary protocol tags them,
        # so integer-valued counters survive a round trip as integers.
        for name, value in self.registry.counters.as_dict().items():
            out[name] = value if isinstance(value, int) else float(value)
        # Durability counters accumulate in the process-global registry
        # (recovery happens at open time, commits on the mutation path —
        # neither runs under a per-query scope), so surface them here.
        for name, value in obs.snapshot(prefix="storage.wal").items():
            out.setdefault(name,
                           value if isinstance(value, int)
                           else float(value))
        out.update(self.cache.stats())
        queries = out.get("server.queries", 0.0)
        executed = out.get("server.queries.executed", 0.0)
        out["server.uptime_seconds"] = uptime
        out["server.qps"] = queries / uptime
        out["server.inflight"] = float(self._inflight)
        out["server.max_inflight"] = float(
            self.config.effective_max_inflight())
        out["server.sessions.active"] = float(len(self._connections))
        out["server.workers"] = float(self.config.workers)
        if executed:
            for engine_counter, avg_name in (
                    ("rtree.search.nodes_visited",
                     "avg.nodes_visited_per_query"),
                    ("storage.disk_rtree.nodes_read",
                     "avg.disk_nodes_read_per_query"),
                    ("storage.buffer.misses",
                     "avg.page_faults_per_query")):
                if engine_counter in out:
                    out[avg_name] = out[engine_counter] / executed
        return out
