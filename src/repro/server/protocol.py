"""Wire protocol for the PSQL query server.

A deliberately simple, debuggable **line protocol** (UTF-8, ``\\n``
terminated) in the tradition of redis' inline commands and memcached's
text protocol — you can drive the server with ``nc`` and read every
frame.  Requests are single lines::

    QUERY select city from cities on us-map at loc covered-by {4+-4, 11+-9}
    EXPLAIN ANALYZE select city from cities where population > 1000000
    REPACK us-map cities loc
    STATS
    PING
    QUIT

``EXPLAIN [ANALYZE] <query>`` rides the QUERY pipeline end to end: the
plan comes back as an ordinary result with a single ``plan`` column,
one row per plan line, and is cached under the same
``(normalized text, generation)`` key as query results.

Responses are sequences of frames terminated by an ``END`` line.  For a
successful query::

    OK fresh 0 12        <- status, cache disposition, generation, rows
    COLS city
    ROW Boston
    ...
    END

Failure frames (``ERR``, ``BUSY``, ``TIMEOUT``) are likewise
``END``-terminated, so a client always reads until ``END`` and a bad
query never desynchronises the connection.

Row payloads embed tabs and newlines via backslash escapes
(:func:`escape` / :func:`unescape`); fields within ``COLS``/``ROW``
frames are tab-separated.  :func:`encode_result` is the **single**
rendering of a :class:`~repro.psql.result.QueryResult` into payload
lines — both the server and any test that wants to compare server
output against a direct in-process execution must call it, which is
what makes "byte-identical to ``executor.execute``" checkable at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.psql.result import QueryResult

#: Default TCP port ("PSQL" on a phone keypad is 7775; we keep it short).
DEFAULT_PORT = 7751

# Frame tags.
OK = "OK"
COLS = "COLS"
ROW = "ROW"
STAT = "STAT"
ERR = "ERR"
BUSY = "BUSY"
TIMEOUT = "TIMEOUT"
PONG = "PONG"
BYE = "BYE"
END = "END"

#: Terminal tags a client may see instead of a normal OK response.
_TERMINAL = frozenset({ERR, BUSY, TIMEOUT})


def escape(text: str) -> str:
    """Make *text* safe for a single tab-separated protocol field."""
    return (text.replace("\\", "\\\\").replace("\t", "\\t")
            .replace("\n", "\\n").replace("\r", "\\r"))


#: The only escape pairs :func:`escape` emits; :func:`unescape` accepts
#: nothing else.
_UNESCAPES = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}


def unescape(text: str) -> str:
    """Invert :func:`escape`.

    Strict by design: a lone trailing backslash or an unknown escape
    pair (``\\x``) can only come from a corrupted or non-conforming
    frame, and silently passing it through as a literal would let the
    corruption masquerade as data.

    Raises:
        ProtocolError: on a malformed escape sequence.
    """
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\":
            if i + 1 >= n:
                raise ProtocolError(
                    f"truncated escape at end of field {text!r}")
            nxt = text[i + 1]
            try:
                out.append(_UNESCAPES[nxt])
            except KeyError:
                pair = "\\" + nxt
                raise ProtocolError(
                    f"unknown escape sequence {pair!r} in field "
                    f"{text!r}") from None
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def format_value(value: Any) -> str:
    """Deterministic text rendering of one result cell.

    Strings travel as themselves; every other domain value (ints,
    floats, geometry objects) travels as its ``repr``, which is stable
    for all the types PSQL can return.  The client does not re-parse
    values — rows come back as strings, which is exactly what the
    byte-identity guarantee is stated over.
    """
    if isinstance(value, str):
        return value
    return repr(value)


def encode_result(result: QueryResult) -> list[str]:
    """Render a query result as payload lines (``COLS``/``ROW``*/``END``).

    This is the canonical serialisation: the server streams these lines
    verbatim (and caches them verbatim), so comparing a client's payload
    against ``encode_result(session.execute(text))`` is a byte-level
    equivalence check.
    """
    lines = [COLS + " " + "\t".join(escape(c) for c in result.columns)]
    for row in result.rows:
        lines.append(
            ROW + " " + "\t".join(escape(format_value(v)) for v in row))
    lines.append(END)
    return lines


def split_fields(payload: str) -> list[str]:
    """Unescaped fields of one ``COLS``/``ROW`` frame body."""
    if payload == "":
        return []
    return [unescape(f) for f in payload.split("\t")]


@dataclass
class Response:
    """One parsed server response, as the blocking client returns it."""

    status: str                      #: "ok", "error", "busy", "timeout",
                                     #: "pong" or "bye"
    cached: bool = False             #: served from the result cache?
    generation: int = -1             #: database generation that produced it
    #: header row/entry count: result rows for a query, index entries
    #: for a ``REPACK`` acknowledgement (whose body is just ``END``)
    nrows: int = 0
    columns: tuple[str, ...] = ()
    rows: list[tuple[str, ...]] = field(default_factory=list)
    #: raw COLS/ROW/END payload bytes, byte-identical to
    #: ``"\n".join(encode_result(...)) + "\n"`` for OK responses
    payload: bytes = b""
    error_kind: str = ""
    error_message: str = ""
    #: STAT name/value pairs; integer-rendered counters parse back to
    #: ``int``, everything else to ``float``
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def raise_for_status(self) -> "Response":
        """Return self, raising :class:`ServerError` on failure frames."""
        if self.status == "error":
            raise ServerError(f"{self.error_kind}: {self.error_message}")
        if self.status == "busy":
            raise ServerBusyError(self.error_message or "server busy")
        if self.status == "timeout":
            raise ServerTimeoutError(self.error_message or "query timed out")
        return self


class ServerError(Exception):
    """The server answered with an ``ERR`` frame."""


class ServerBusyError(ServerError):
    """The admission gate shed this query (``BUSY`` frame)."""


class ServerTimeoutError(ServerError):
    """The query exceeded the per-query timeout (``TIMEOUT`` frame)."""


class ProtocolError(Exception):
    """The byte stream violated the framing rules."""


def parse_response(lines: list[str]) -> Response:
    """Parse the frames of one response (without trailing newlines).

    Raises:
        ProtocolError: on malformed frames.
    """
    if not lines:
        raise ProtocolError("empty response")
    head = lines[0]
    tag, _, rest = head.partition(" ")
    if tag == OK and rest.startswith("stats"):
        return _parse_stats(lines)
    if tag == OK:
        return _parse_ok(rest, lines)
    if tag == ERR:
        kind, _, message = rest.partition(" ")
        return Response(status="error", error_kind=kind or "Error",
                        error_message=unescape(message))
    if tag == BUSY:
        return Response(status="busy", error_message=unescape(rest))
    if tag == TIMEOUT:
        return Response(status="timeout", error_message=unescape(rest))
    if tag == PONG:
        return Response(status="pong")
    if tag == BYE:
        return Response(status="bye")
    raise ProtocolError(f"unknown response frame {head!r}")


def _parse_ok(rest: str, lines: list[str]) -> Response:
    parts = rest.split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed OK header {rest!r}")
    disposition, gen_text, nrows_text = parts
    # "cached"/"fresh" mark query results by cache disposition; the
    # acknowledgement dispositions name the verb they answer (REPACK,
    # HELLO/PREPARE negotiation, and the cluster tier's INSERT/DELETE
    # routing verbs).
    if disposition not in ("cached", "fresh", "repack", "maintain",
                           "insert", "delete", "replay", "hello",
                           "prepare"):
        raise ProtocolError(f"unknown cache disposition {disposition!r}")
    try:
        nrows = int(nrows_text)
    except ValueError as exc:
        raise ProtocolError(f"malformed OK header {rest!r}") from exc
    response = Response(status="ok", cached=(disposition == "cached"),
                        generation=int(gen_text), nrows=nrows)
    body = lines[1:]
    if not body or body[-1] != END:
        raise ProtocolError("OK response not END-terminated")
    response.payload = ("\n".join(body) + "\n").encode("utf-8")
    for line in body[:-1]:
        tag, _, payload = line.partition(" ")
        if tag == COLS:
            response.columns = tuple(split_fields(payload))
        elif tag == ROW:
            response.rows.append(tuple(split_fields(payload)))
        else:
            raise ProtocolError(f"unexpected frame {line!r} in OK body")
    return response


def _parse_stats(lines: list[str]) -> Response:
    response = Response(status="ok")
    if lines[-1] != END:
        raise ProtocolError("STATS response not END-terminated")
    for line in lines[1:-1]:
        tag, _, payload = line.partition(" ")
        if tag != STAT:
            raise ProtocolError(f"unexpected frame {line!r} in STATS body")
        name, _, value = payload.partition(" ")
        # Integer-valued counters stay integral through a round trip:
        # the server renders ints via str() and floats via repr(), so
        # the rendering itself tells us which type to restore.
        try:
            response.stats[unescape(name)] = int(value)
        except ValueError:
            try:
                response.stats[unescape(name)] = float(value)
            except ValueError as exc:
                raise ProtocolError(f"bad STAT value in {line!r}") from exc
    generation = response.stats.get("server.generation")
    if generation is not None:
        response.generation = int(generation)
    return response


def encode_stats(stats: dict[str, float],
                 generation: Optional[int] = None) -> list[str]:
    """Render a stats mapping as ``OK stats`` + ``STAT`` frames."""
    lines = [OK + " stats"]
    if generation is not None:
        lines.append(f"{STAT} server.generation {generation}")
    for name in sorted(stats):
        value = stats[name]
        rendered = repr(value) if isinstance(value, float) else str(value)
        lines.append(f"{STAT} {escape(name)} {rendered}")
    lines.append(END)
    return lines
