"""Binary wire protocol for the PSQL query server.

The text protocol (:mod:`repro.server.protocol`) stays the default —
debuggable with ``nc``, driven by the REPL — but every byte of a hot
cached read costs a Python-level escape/unescape loop.  This module is
the negotiated fast path, in the tradition of memcached's binary
protocol next to its text protocol: length-prefixed frames, struct-packed
headers, length-prefixed UTF-8 cells that decode with C-speed slicing.

Negotiation is in-band and text-first: a client that wants binary sends
the ordinary line ``HELLO bin`` as its first command; the server answers
a normal text acknowledgement (``OK hello <generation> 0`` / ``END``)
and *both* sides switch to binary framing from the next byte on.  A
server too old to know ``HELLO`` answers ``ERR`` and the connection
simply stays on the text protocol.

Framing (all integers little-endian)::

    frame    := u32 length, body[length]
    request  := u8 opcode, payload
    response := u8 status, payload

Requests:

====================  =======================================================
``OP_QUERY``          UTF-8 query text
``OP_PREPARE``        UTF-8 statement template with ``?`` placeholders
``OP_EXECUTE``        u32 statement id, u16 nparams, nparams × str
``OP_STATS``          (empty)
``OP_PING``           (empty)
``OP_QUIT``           (empty)
``OP_COMMAND``        UTF-8 command line (any text-protocol verb:
                      ``REPACK``/``ADVISE``/``HEALTH``/cluster verbs)
====================  =======================================================

where ``str`` is ``u32 length, UTF-8 bytes``.  Responses:

====================  =======================================================
``ST_OK``             u8 disposition, i64 generation, u32 nrows,
                      result body (empty for acknowledgements)
``ST_PREPARED``       i64 generation, u32 statement id, u16 nparams
``ST_ERR``            str kind, str message
``ST_BUSY``           str message
``ST_TIMEOUT``        str message
``ST_PONG``           (empty)
``ST_BYE``            (empty)
``ST_STATS``          u32 count, count × (str name, u8 tag, f64|i64 value)
====================  =======================================================

The **result body** is the binary twin of
:func:`repro.server.protocol.encode_result` and carries exactly the same
cell strings (:func:`repro.server.protocol.format_value` renderings)::

    u16 ncols, ncols × str
    u32 nrows, nrows × (ncols × str)

:func:`encode_result_body` is the single binary rendering — the server
caches its output verbatim and the smoke/equivalence tests compare a
client's ``Response.payload`` against it byte for byte, extending the
text protocol's byte-identity guarantee to binary.

A malformed frame *body* (unknown opcode, truncated struct) is answered
with an ``ST_ERR`` frame and the connection carries on — the length
prefix was consumed exactly, so framing never desynchronises.  Only an
implausible length prefix (zero, or beyond :data:`MAX_FRAME`) forces a
close, because the stream position itself can no longer be trusted.
"""

from __future__ import annotations

import struct
from typing import Any, Union

from repro.psql.result import QueryResult
from repro.server.protocol import ProtocolError, Response, format_value

__all__ = [
    "MAX_FRAME",
    "BinaryResponse",
    "decode_execute",
    "decode_request",
    "decode_result_body",
    "encode_command",
    "encode_execute",
    "encode_prepare",
    "encode_query",
    "encode_result_body",
    "encode_simple",
    "encode_string_rows_body",
    "frame",
    "frame_prefix",
    "ok_header",
    "parse_response_body",
    "response_ack",
    "response_busy",
    "response_bye",
    "response_error",
    "response_pong",
    "response_prepared",
    "response_stats",
    "response_timeout",
]

#: Hard ceiling on one frame body; anything larger is treated as a
#: framing error (the stream is desynchronised or hostile).
MAX_FRAME = 64 * 1024 * 1024

# Request opcodes.
OP_QUERY = 1
OP_PREPARE = 2
OP_EXECUTE = 3
OP_STATS = 4
OP_PING = 5
OP_QUIT = 6
OP_COMMAND = 7

# Response status codes.
ST_OK = 0
ST_ERR = 1
ST_BUSY = 2
ST_TIMEOUT = 3
ST_PONG = 4
ST_BYE = 5
ST_STATS = 6
ST_PREPARED = 7

#: OK-header cache dispositions, numbered for the u8 field.  The names
#: match the text protocol's OK header exactly.
DISPOSITIONS = ("fresh", "cached", "repack", "insert", "delete", "replay",
                "hello", "prepare", "maintain")
_DISPOSITION_CODE = {name: i for i, name in enumerate(DISPOSITIONS)}

_U32 = struct.Struct("<I")
_U16 = struct.Struct("<H")
_OK_HEADER = struct.Struct("<BBqI")       # status, disposition, gen, nrows
_PREPARED = struct.Struct("<BqIH")        # status, gen, stmt_id, nparams
_STAT_VALUE = struct.Struct("<d")
_STAT_IVALUE = struct.Struct("<q")


class BinaryResponse(Response):
    """A :class:`Response` whose result rows decode lazily.

    The hot cached-read path never looks at individual cells — callers
    checking ``ok``/``nrows``/``payload`` pay nothing for row
    materialisation; the first access to :attr:`columns` or :attr:`rows`
    decodes the retained result body.  A malformed body therefore
    surfaces its :class:`ProtocolError` at first access rather than at
    read time.
    """

    _lazy = False
    _columns: tuple = ()
    _rows: list = None

    def _ensure_decoded(self) -> None:
        if self._lazy:
            self._lazy = False
            self._columns, self._rows = decode_result_body(self.payload)

    @property
    def columns(self) -> tuple:
        self._ensure_decoded()
        return self._columns

    @columns.setter
    def columns(self, value: tuple) -> None:
        self._columns = value

    @property
    def rows(self) -> list:
        self._ensure_decoded()
        return self._rows

    @rows.setter
    def rows(self, value: list) -> None:
        self._rows = value


def frame(body: bytes) -> bytes:
    """Wrap *body* in a length prefix, ready to write to the socket."""
    return _U32.pack(len(body)) + body


def frame_prefix(body_length: int) -> bytes:
    """Just the length prefix — for writers that stream the body parts
    separately to avoid concatenating large cached buffers."""
    return _U32.pack(body_length)


def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    return _U32.pack(len(data)) + data


def _unpack_str(body: bytes, offset: int) -> tuple[str, int]:
    try:
        (length,) = _U32.unpack_from(body, offset)
    except struct.error as exc:
        raise ProtocolError("truncated string length") from exc
    offset += 4
    end = offset + length
    if end > len(body):
        raise ProtocolError("truncated string payload")
    try:
        return body[offset:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise ProtocolError("string payload is not UTF-8") from exc


# -- requests -----------------------------------------------------------------


def encode_query(text: str) -> bytes:
    """An ``OP_QUERY`` frame for one PSQL query."""
    return frame(bytes([OP_QUERY]) + text.encode("utf-8"))


def encode_prepare(template: str) -> bytes:
    """An ``OP_PREPARE`` frame for a ``?``-placeholder template."""
    return frame(bytes([OP_PREPARE]) + template.encode("utf-8"))


def encode_execute(statement_id: int, params: tuple[str, ...]) -> bytes:
    """An ``OP_EXECUTE`` frame binding *params* to a prepared statement."""
    parts = [bytes([OP_EXECUTE]), _U32.pack(statement_id),
             _U16.pack(len(params))]
    parts.extend(_pack_str(p) for p in params)
    return frame(b"".join(parts))


def encode_command(line: str) -> bytes:
    """An ``OP_COMMAND`` frame carrying a full text-protocol line."""
    return frame(bytes([OP_COMMAND]) + line.encode("utf-8"))


def encode_simple(opcode: int) -> bytes:
    """A payload-less request frame (``OP_STATS``/``OP_PING``/``OP_QUIT``)."""
    return frame(bytes([opcode]))


def decode_request(body: bytes) -> tuple[int, bytes]:
    """Split a request body into ``(opcode, payload)``.

    Raises:
        ProtocolError: on an empty body.
    """
    if not body:
        raise ProtocolError("empty request frame")
    return body[0], body[1:]


def decode_execute(payload: bytes) -> tuple[int, tuple[str, ...]]:
    """Decode an ``OP_EXECUTE`` payload into ``(statement_id, params)``.

    Raises:
        ProtocolError: on truncated or trailing bytes.
    """
    try:
        (statement_id,) = _U32.unpack_from(payload, 0)
        (nparams,) = _U16.unpack_from(payload, 4)
    except struct.error as exc:
        raise ProtocolError("truncated EXECUTE header") from exc
    offset = 6
    params = []
    for _ in range(nparams):
        value, offset = _unpack_str(payload, offset)
        params.append(value)
    if offset != len(payload):
        raise ProtocolError("trailing bytes after EXECUTE params")
    return statement_id, tuple(params)


# -- the result body ----------------------------------------------------------


def encode_result_body(result: QueryResult) -> bytes:
    """The canonical binary rendering of a query result.

    Cell strings are exactly the text protocol's
    :func:`~repro.server.protocol.format_value` renderings, so text and
    binary clients decode *identical* strings — only the framing
    differs (no escaping is needed; lengths delimit the cells).
    """
    parts = [_U16.pack(len(result.columns))]
    parts.extend(_pack_str(c) for c in result.columns)
    parts.append(_U32.pack(len(result.rows)))
    for row in result.rows:
        parts.extend(_pack_str(format_value(v)) for v in row)
    return b"".join(parts)


def encode_string_rows_body(columns: tuple[str, ...],
                            rows: list[tuple[Any, ...]]) -> bytes:
    """A result body from already-formatted string rows (router merges)."""
    parts = [_U16.pack(len(columns))]
    parts.extend(_pack_str(c) for c in columns)
    parts.append(_U32.pack(len(rows)))
    for row in rows:
        parts.extend(_pack_str(str(v)) for v in row)
    return b"".join(parts)


def decode_result_body(body: bytes, offset: int = 0,
                       ) -> tuple[tuple[str, ...], list[tuple[str, ...]]]:
    """Decode ``(columns, rows)`` from a result body.

    Raises:
        ProtocolError: on truncated or trailing bytes.
    """
    try:
        (ncols,) = _U16.unpack_from(body, offset)
    except struct.error as exc:
        raise ProtocolError("truncated result body") from exc
    offset += 2
    columns = []
    for _ in range(ncols):
        name, offset = _unpack_str(body, offset)
        columns.append(name)
    try:
        (nrows,) = _U32.unpack_from(body, offset)
    except struct.error as exc:
        raise ProtocolError("truncated result body") from exc
    offset += 4
    rows: list[tuple[str, ...]] = []
    for _ in range(nrows):
        cells = []
        for _ in range(ncols):
            cell, offset = _unpack_str(body, offset)
            cells.append(cell)
        rows.append(tuple(cells))
    if offset != len(body):
        raise ProtocolError("trailing bytes after result body")
    return tuple(columns), rows


# -- responses ----------------------------------------------------------------


def ok_header(disposition: str, generation: int, nrows: int) -> bytes:
    """The fixed-size ``ST_OK`` header; append a result body (or nothing
    for acknowledgements) and wrap with :func:`frame`."""
    return _OK_HEADER.pack(ST_OK, _DISPOSITION_CODE[disposition],
                           generation, nrows)


def response_ack(disposition: str, generation: int, nrows: int) -> bytes:
    """A body-less ``ST_OK`` frame (REPACK/INSERT/DELETE/REPLAY acks)."""
    return frame(ok_header(disposition, generation, nrows))


def response_prepared(generation: int, statement_id: int,
                      nparams: int) -> bytes:
    return frame(_PREPARED.pack(ST_PREPARED, generation, statement_id,
                                nparams))


def response_error(kind: str, message: str) -> bytes:
    return frame(bytes([ST_ERR]) + _pack_str(kind) + _pack_str(message))


def response_busy(message: str) -> bytes:
    return frame(bytes([ST_BUSY]) + _pack_str(message))


def response_timeout(message: str) -> bytes:
    return frame(bytes([ST_TIMEOUT]) + _pack_str(message))


def response_pong() -> bytes:
    return frame(bytes([ST_PONG]))


def response_bye() -> bytes:
    return frame(bytes([ST_BYE]))


def response_stats(stats: dict[str, Union[int, float]]) -> bytes:
    """An ``ST_STATS`` frame.  Values keep their Python type: ints travel
    as tagged i64 and come back integral, everything else as f64."""
    parts = [bytes([ST_STATS]), _U32.pack(len(stats))]
    for name in sorted(stats):
        value = stats[name]
        parts.append(_pack_str(name))
        if isinstance(value, int) and not isinstance(value, bool):
            parts.append(b"\x01" + _STAT_IVALUE.pack(value))
        else:
            parts.append(b"\x00" + _STAT_VALUE.pack(float(value)))
    return b"".join([_U32.pack(sum(len(p) for p in parts))] + parts)


def parse_response_body(body: bytes) -> Response:
    """Parse one response body into the same :class:`Response` the text
    protocol's :func:`~repro.server.protocol.parse_response` produces.

    For ``ST_OK`` with a result body, ``Response.payload`` holds the raw
    result-body bytes — byte-identical to
    :func:`encode_result_body` of the producing execution, which is what
    the cross-protocol equivalence tests compare.

    Raises:
        ProtocolError: on malformed bodies.
    """
    if not body:
        raise ProtocolError("empty response frame")
    status = body[0]
    if status == ST_OK:
        try:
            _st, code, generation, nrows = _OK_HEADER.unpack_from(body, 0)
        except struct.error as exc:
            raise ProtocolError("truncated OK header") from exc
        if code >= len(DISPOSITIONS):
            raise ProtocolError(f"unknown cache disposition code {code}")
        disposition = DISPOSITIONS[code]
        response = BinaryResponse(status="ok",
                                  cached=(disposition == "cached"),
                                  generation=generation, nrows=nrows)
        payload = body[_OK_HEADER.size:]
        response.payload = payload
        response._lazy = bool(payload)
        return response
    if status == ST_PREPARED:
        try:
            _st, generation, statement_id, nparams = \
                _PREPARED.unpack_from(body, 0)
        except struct.error as exc:
            raise ProtocolError("truncated PREPARED response") from exc
        if len(body) != _PREPARED.size:
            raise ProtocolError("trailing bytes after PREPARED response")
        response = Response(status="ok", generation=generation,
                            nrows=statement_id)
        response.stats["statement.nparams"] = nparams
        return response
    if status == ST_ERR:
        kind, offset = _unpack_str(body, 1)
        message, offset = _unpack_str(body, offset)
        if offset != len(body):
            raise ProtocolError("trailing bytes after ERR response")
        return Response(status="error", error_kind=kind or "Error",
                        error_message=message)
    if status == ST_BUSY:
        message, _ = _unpack_str(body, 1)
        return Response(status="busy", error_message=message)
    if status == ST_TIMEOUT:
        message, _ = _unpack_str(body, 1)
        return Response(status="timeout", error_message=message)
    if status == ST_PONG:
        return Response(status="pong")
    if status == ST_BYE:
        return Response(status="bye")
    if status == ST_STATS:
        try:
            (count,) = _U32.unpack_from(body, 1)
        except struct.error as exc:
            raise ProtocolError("truncated STATS response") from exc
        offset = 5
        response = Response(status="ok")
        for _ in range(count):
            name, offset = _unpack_str(body, offset)
            if offset >= len(body):
                raise ProtocolError("truncated STAT entry")
            tag = body[offset]
            offset += 1
            try:
                if tag == 1:
                    (value,) = _STAT_IVALUE.unpack_from(body, offset)
                elif tag == 0:
                    (value,) = _STAT_VALUE.unpack_from(body, offset)
                else:
                    raise ProtocolError(f"unknown STAT value tag {tag}")
            except struct.error as exc:
                raise ProtocolError("truncated STAT value") from exc
            offset += 8
            response.stats[name] = value
        if offset != len(body):
            raise ProtocolError("trailing bytes after STATS response")
        generation = response.stats.get("server.generation")
        if generation is not None:
            response.generation = int(generation)
        return response
    raise ProtocolError(f"unknown response status {status}")
