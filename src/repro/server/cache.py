"""LRU result cache for the query server.

The paper's premise is a *static, packed* database: queries vastly
outnumber updates, so identical queries recur and their encoded results
can be replayed without touching the tree at all.  Entries are keyed on
``(normalized query text, database generation)``; because every
insert/delete/repack bumps the generation
(:attr:`repro.relational.catalog.Database.generation`), a stale entry
can never be *served* — it simply stops being addressable and ages out
of the LRU.

The cache stores the **encoded payload lines** (see
:func:`repro.server.protocol.encode_result`), not live
``QueryResult`` objects: replaying a hit is a straight write of
immutable strings, safe to share between connections and threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

__all__ = ["CachedResult", "QueryCache"]


class CachedResult:
    """One cached, fully encoded query result.

    ``payload`` holds the text-protocol lines; ``bbody`` the binary
    result body (empty when the producer did not compute one).  Storing
    both renderings means a cache hit needs zero conversion regardless
    of which protocol the connection negotiated.
    """

    __slots__ = ("payload", "nrows", "generation", "bbody")

    def __init__(self, payload: tuple[str, ...], nrows: int,
                 generation: int, bbody: bytes = b""):
        self.payload = payload
        self.nrows = nrows
        self.generation = generation
        self.bbody = bbody


class QueryCache:
    """A bounded LRU of encoded query results, generation-checked.

    Args:
        capacity: maximum number of cached results.  ``0`` disables the
            cache entirely (every lookup misses, every store is a no-op)
            — the throughput benchmark uses this to measure raw query
            execution.

    Thread-safe: the server consults it from the event-loop thread, but
    nothing stops tests or embedding applications from sharing one
    across threads.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidated = 0
        self._entries: OrderedDict[tuple[str, int], CachedResult] = \
            OrderedDict()
        self._lock = threading.Lock()

    def get(self, normalized: str, generation: int,
            ) -> Optional[CachedResult]:
        """The cached result for this query at this generation, if any."""
        if self.capacity == 0:
            return None
        with self._lock:
            entry = self._entries.get((normalized, generation))
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end((normalized, generation))
            self.hits += 1
            return entry

    def put(self, normalized: str, generation: int,
            payload: tuple[str, ...], nrows: int,
            bbody: bytes = b"") -> None:
        """Store an encoded result (evicting the LRU entry when full)."""
        if self.capacity == 0:
            return
        with self._lock:
            key = (normalized, generation)
            self._entries[key] = CachedResult(payload, nrows, generation,
                                              bbody)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def drop_stale(self, current_generation: int) -> int:
        """Proactively drop entries older than *current_generation*.

        Purely a space optimisation — stale entries are unreachable
        anyway.  Returns how many entries were dropped.
        """
        with self._lock:
            stale = [k for k, v in self._entries.items()
                     if v.generation < current_generation]
            for k in stale:
                del self._entries[k]
            self.invalidated += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _hit_rate_locked(self) -> float:
        # Callers hold self._lock (a plain Lock — re-acquiring would
        # deadlock, hence this unlocked core shared by hit_rate/stats).
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        with self._lock:
            return self._hit_rate_locked()

    def stats(self) -> dict[str, float]:
        """Counter snapshot under ``server.cache.*`` names.

        Taken under the lock as one atomic read: concurrent get/put
        traffic can never yield a torn snapshot (e.g. hits + misses
        disagreeing with the hit rate computed from them).
        """
        with self._lock:
            return {
                "server.cache.size": float(len(self._entries)),
                "server.cache.capacity": float(self.capacity),
                "server.cache.hits": float(self.hits),
                "server.cache.misses": float(self.misses),
                "server.cache.evictions": float(self.evictions),
                "server.cache.invalidated": float(self.invalidated),
                "server.cache.hit_rate": self._hit_rate_locked(),
            }
