"""CLI entrypoint: ``python -m repro.server`` / ``repro-psql-server``."""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.server.demo import DEFAULT_FACTORY_SPEC
from repro.server.protocol import DEFAULT_PORT
from repro.server.server import PsqlServer, ServerConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-psql-server",
        description="Serve PSQL queries over TCP from a packed "
                    "pictorial database.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"TCP port; 0 picks an ephemeral one "
                             f"(default {DEFAULT_PORT})")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker pool size (default 4)")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="worker pool kind; 'process' scales CPU-"
                             "bound search across cores but serves a "
                             "static database (default thread)")
    parser.add_argument("--database", default=DEFAULT_FACTORY_SPEC,
                        metavar="MODULE:CALLABLE",
                        help="factory building the database to serve "
                             f"(default {DEFAULT_FACTORY_SPEC})")
    parser.add_argument("--max-inflight", type=int, default=0,
                        help="admission gate: queries in flight before "
                             "BUSY is returned (default 2*workers)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-query timeout in seconds; <=0 "
                             "disables (default 30)")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="result cache entries; 0 disables "
                             "(default 256)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServerConfig(
        host=args.host, port=args.port, workers=args.workers,
        executor=args.executor, max_inflight=args.max_inflight,
        query_timeout=args.timeout, cache_size=args.cache_size,
        factory_spec=args.database)
    server = PsqlServer(config)

    async def run() -> None:
        await server.start()
        print(f"repro-psql-server listening on "
              f"{config.host}:{server.port} "
              f"({config.workers} {config.executor} workers, "
              f"max {config.effective_max_inflight()} in flight)",
              flush=True)
        assert server._asyncio_server is not None
        await server._asyncio_server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
