"""End-to-end cluster smoke check: ``python -m repro.cluster.smoke``.

Starts an in-process cluster — 2 primary shards with durable heaps +
1 log-shipped read replica each + the scatter-gather router — and runs
a 500-query equivalence sweep against a single-server oracle built from
the same dataset, with inserts/deletes and replica replays mixed in.
Exits non-zero on the first divergence.  CI runs this as the
``cluster-smoke`` job.
"""

from __future__ import annotations

import random
import sys
import tempfile

from repro.geometry.point import Point
from repro.psql.executor import Session
from repro.rtree.search import knn_search
from repro.server import protocol
from repro.cluster.dataset import GID_COLUMN, build_database
from repro.cluster.demo import demo_dataset
from repro.cluster.launcher import LocalCluster
from repro.cluster.workload import random_queries

N_QUERIES = 500
N_KNN = 25
N_MUTATIONS = 10
SEED = 1234


def oracle_rows(session: Session, text: str) -> list[tuple[str, ...]]:
    """The single-server answer, formatted exactly like wire rows."""
    result = session.execute(text)
    return sorted(tuple(protocol.format_value(v) for v in row)
                  for row in result.rows)


def oracle_knn(db, picture: str, relation: str, x: float, y: float,
               k: int) -> list[tuple[float, int]]:
    tree = db.picture(picture).index(relation, "loc")
    rel = db.relation(relation)
    hits = knn_search(tree, Point(x, y), k)
    return sorted((float(d), int(rel.get(rid)[GID_COLUMN]))
                  for d, rid in hits)[:k]


def main() -> int:
    rng = random.Random(SEED)
    dataset = demo_dataset()
    oracle_db = build_database(dataset)
    oracle = Session(oracle_db)
    failures = 0
    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as tmp, \
            LocalCluster(dataset, nshards=2, replicas_per_shard=1,
                         data_root=tmp) as cluster:
        client = cluster.client()
        queries = random_queries(rng, dataset.universe, N_QUERIES)
        mutate_at = set(rng.sample(range(N_QUERIES), N_MUTATIONS))
        inserted_gids: list[int] = []
        for i, text in enumerate(queries):
            response = client.query(text).raise_for_status()
            got = sorted(response.rows)
            want = oracle_rows(oracle, text)
            if got != want:
                failures += 1
                print(f"MISMATCH query {i}: {text}\n"
                      f"  routed {len(got)} rows, oracle {len(want)}",
                      file=sys.stderr)
                if failures >= 3:
                    break
            if i in mutate_at:
                if inserted_gids and rng.random() < 0.4:
                    gid = inserted_gids.pop()
                    client.delete_row("cities", gid).raise_for_status()
                    for rid, row in list(
                            oracle_db.relation("cities").rows()):
                        if row[GID_COLUMN] == gid:
                            oracle_db.delete("cities", rid)
                            break
                else:
                    u = dataset.universe
                    row = {"city": f"smoke-city-{i}", "state": "ZZ",
                           "population": rng.randrange(1000, 9_000_000),
                           "loc": Point(rng.uniform(u.x1, u.x2),
                                        rng.uniform(u.y1, u.y2))}
                    ack = client.insert_row(
                        "cities", row).raise_for_status()
                    gid = ack.nrows
                    inserted_gids.append(gid)
                    oracle_db.insert("cities", {GID_COLUMN: gid, **row})
                # Catch the replicas up so reads keep rotating onto them.
                for sid in range(len(cluster.shards)):
                    cluster.replica_client(sid).replay()
            if (i + 1) % 100 == 0:
                print(f"  {i + 1}/{N_QUERIES} queries checked")
        for _ in range(N_KNN):
            u = dataset.universe
            x = round(rng.uniform(u.x1, u.x2), 1)
            y = round(rng.uniform(u.y1, u.y2), 1)
            k = rng.randrange(1, 12)
            response = client.knn("us-map", "cities", x, y,
                                  k).raise_for_status()
            got_knn = [(float(d), int(g)) for d, g in response.rows]
            want_knn = oracle_knn(oracle_db, "us-map", "cities", x, y, k)
            if got_knn != want_knn:
                failures += 1
                print(f"MISMATCH knn ({x},{y},k={k}):\n"
                      f"  routed {got_knn}\n  oracle {want_knn}",
                      file=sys.stderr)
        stats = client.stats()
        print(f"cluster-smoke: {N_QUERIES} queries + {N_KNN} kNN + "
              f"{N_MUTATIONS} mutations, "
              f"replica reads={stats.get('router.reads.replica', 0):.0f}, "
              f"cache hit rate="
              f"{stats.get('router.cache.hit_rate', 0):.2f}, "
              f"failures={failures}")
        client.close()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
