"""Cluster datasets: one deterministic description, many databases.

Every node of a cluster — each primary shard, each read replica, the
single-server oracle the tests compare against — must be able to build
its slice of the data independently and *identically*.  A
:class:`ClusterDataset` is that description: relations (with every row
tagged by a hidden ``gid`` column), picture registrations and named
locations, all plain data.

The ``gid`` column is the cluster's global row identity.  Objects whose
MBR spans a shard boundary are stored on **every** shard they overlap
(see :mod:`repro.cluster.partition` for why that makes scatter-gather
exact), so the same logical row can come back from several shards; the
router deduplicates merged results by ``gid``, which is why the column
must exist on every sharded relation.  It is ordinary data otherwise —
the oracle database carries it too, so routed and direct results stay
comparable column for column.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.geometry.rect import Rect
from repro.relational.catalog import Database, mbr_of_value
from repro.relational.relation import Column, SchemaError
from repro.cluster.partition import ShardMap

__all__ = ["GID_COLUMN", "ClusterDataset", "ClusterRelation",
           "build_database", "dataset_from_database",
           "materialize_database"]

#: The hidden global-row-identity column every sharded relation carries.
GID_COLUMN = "gid"


@dataclass
class ClusterRelation:
    """Schema plus seed rows of one relation, gid column included."""

    name: str
    columns: tuple[Column, ...]          #: includes the gid column
    rows: list[dict[str, Any]] = field(default_factory=list)

    def pictorial_columns(self) -> list[Column]:
        return [c for c in self.columns if c.is_pictorial]


@dataclass
class ClusterDataset:
    """Everything needed to build any node's database of a cluster."""

    universe: Rect
    relations: list[ClusterRelation] = field(default_factory=list)
    #: picture name -> [(relation name, pictorial column), ...]
    pictures: dict[str, list[tuple[str, str]]] = field(default_factory=dict)
    locations: dict[str, Rect] = field(default_factory=dict)
    next_gid: int = 0

    def relation(self, name: str) -> ClusterRelation:
        for rel in self.relations:
            if rel.name == name:
                return rel
        raise KeyError(f"dataset has no relation {name!r}")


def dataset_from_database(db: Database,
                          universe: Optional[Rect] = None) -> ClusterDataset:
    """Snapshot a live :class:`Database` into a shardable dataset.

    Rows are copied and tagged with fresh ``gid`` values in heap order
    (deterministic for deterministically built databases, e.g. the demo
    factory).  Pictures keep their registrations; the universe defaults
    to the first picture's.

    Raises:
        SchemaError: when a relation already has a ``gid`` column (the
            name is reserved for the cluster's row identity).
    """
    pictures = {pic.name: sorted(pic.associations())
                for pic in db.pictures()}
    if universe is None:
        for pic in db.pictures():
            universe = pic.universe
            break
    if universe is None:
        raise ValueError("dataset needs a universe: the database has no "
                         "pictures and none was given")
    ds = ClusterDataset(universe=universe,
                        pictures=pictures,
                        locations=dict(getattr(db, "_locations", {})))
    gid = 0
    for relation in db.relations():
        if relation.has_column(GID_COLUMN):
            raise SchemaError(
                f"relation {relation.name!r} already has a {GID_COLUMN!r} "
                f"column; that name is reserved for cluster row identity")
        columns = (Column(GID_COLUMN, "int"),) + tuple(relation.columns)
        rows = []
        for _rid, row in relation.rows():
            rows.append({GID_COLUMN: gid, **row})
            gid += 1
        ds.relations.append(ClusterRelation(relation.name, columns, rows))
    ds.next_gid = gid
    return ds


def _row_mbrs(rel: ClusterRelation, row: dict[str, Any]) -> list[Rect]:
    return [mbr_of_value(row[c.name]) for c in rel.pictorial_columns()]


def _keep_row(rel: ClusterRelation, row: dict[str, Any],
              shardmap: Optional[ShardMap], shard_id: Optional[int]) -> bool:
    """Placement rule: a shard keeps every row whose geometry overlaps it.

    A relation without pictorial columns is replicated onto every shard
    (it cannot be spatially partitioned, and broadcast scans still
    dedup by gid).  A row with several pictorial columns is kept if
    *any* of them overlaps the shard — a superset of what correctness
    needs (each queried column must find its rows locally), at the cost
    of a little extra duplication.
    """
    if shardmap is None or shard_id is None:
        return True
    mbrs = _row_mbrs(rel, row)
    if not mbrs:
        return True
    return any(shard_id in shardmap.shards_for_rect(m) for m in mbrs)


def build_database(dataset: ClusterDataset,
                   shardmap: Optional[ShardMap] = None,
                   shard_id: Optional[int] = None,
                   data_dir: Optional[str] = None,
                   durable: bool = True,
                   wal_sync: str = "none") -> Database:
    """Build one node's database from the dataset.

    Args:
        dataset: the cluster dataset.
        shardmap, shard_id: when given, keep only this shard's slice of
            every relation (omit both for the full single-server
            oracle).
        data_dir: when given, relations are durable
            :class:`~repro.relational.persistent.PersistentRelation`
            heap files under this directory — the WAL each one writes is
            the log-shipping feed for read replicas.  **Reopen
            semantics:** if a relation's heap file already exists the
            seed rows are NOT re-inserted; whatever the file (plus its
            WAL replay) holds is the state — which is exactly what a
            crashed shard needs to come back with.
        durable / wal_sync: persistence knobs (data_dir mode only);
            ``wal_sync="none"`` keeps atomicity against process death
            without paying an fsync per mutation.
    """
    db = Database()
    for rel in dataset.relations:
        if data_dir is not None:
            path = os.path.join(data_dir, f"{rel.name}.heap")
            existed = os.path.exists(path)
            stored = db.create_persistent_relation(
                rel.name, list(rel.columns), path, durable=durable,
                wal_sync=wal_sync,
                # The WAL is a replica feed: checkpoint truncation would
                # pull the log out from under a tailing replica, so it
                # is pushed out beyond any test/bench workload size.
                checkpoint_bytes=1 << 40)
            if not existed:
                for row in rel.rows:
                    if _keep_row(rel, row, shardmap, shard_id):
                        stored.insert(row)
        else:
            stored = db.create_relation(rel.name, list(rel.columns))
            for row in rel.rows:
                if _keep_row(rel, row, shardmap, shard_id):
                    stored.insert(row)
    _register_pictures(db, dataset)
    for name, area in dataset.locations.items():
        db.define_location(name, area)
    return db


def materialize_database(dataset: ClusterDataset,
                         rows_by_relation: dict[str, Iterable[dict]],
                         ) -> Database:
    """Build an in-memory database from externally supplied rows.

    The replica replay path uses this: rows come from decoding the
    primary's shipped heap pages, not from the dataset's seed rows — the
    dataset contributes only schema, pictures and locations.
    """
    db = Database()
    for rel in dataset.relations:
        stored = db.create_relation(rel.name, list(rel.columns))
        for row in rows_by_relation.get(rel.name, ()):
            stored.insert(row)
    _register_pictures(db, dataset)
    for name, area in dataset.locations.items():
        db.define_location(name, area)
    return db


def _register_pictures(db: Database, dataset: ClusterDataset) -> None:
    for pic_name, assocs in dataset.pictures.items():
        picture = db.create_picture(pic_name, dataset.universe)
        for rel_name, column in assocs:
            picture.register(db.relation(rel_name), column)
