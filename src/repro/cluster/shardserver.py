"""Role-aware cluster node servers: primary shards and read replicas.

A :class:`ShardServer` is a :class:`~repro.server.server.PsqlServer`
over one shard's slice of a :class:`~repro.cluster.dataset.ClusterDataset`,
extended through the ``_dispatch`` seam with the verbs the router tier
speaks:

``INSERT <relation> <hex(rowbytes)>``
    Primary only.  The row (gid included) travels as hex-encoded
    :func:`~repro.relational.rowcodec.encode_row` bytes, so geometry
    survives the line protocol untouched.  Inserts are **idempotent by
    gid** — a router retrying after a lost ack cannot double-store a
    row — and answer ``OK insert <generation> <n>`` where *n* is 1 for
    a new row, 0 for an already-present gid.  The
    ``cluster.shard.commit`` failpoint sits after the durable insert
    and before the ack: a hard crash there is exactly the "committed
    but unacknowledged" window the crash matrix probes.

``DELETE <relation> <gid>``
    Primary only; answers ``OK delete <generation> <n>``.

``KNN <picture> <relation> <x> <y> <k> [column]``
    Both roles.  Answers the shard-local k nearest as a
    ``(distance, gid)`` result sorted by that pair — the total order the
    router's merge (and the equivalence tests) rely on under ties.

``REPLAY``
    Replica only: run one log-shipping resync immediately (tests drive
    replication deterministically with this instead of timers) and
    answer ``OK replay <generation> <applied_commits>``.

A replica answers reads exactly like a primary but rejects ``INSERT``,
``DELETE`` and ``REPACK`` with ``ERR ReadOnly``; with ``poll_interval``
> 0 it also resyncs on a timer.  After each resync the fresh database is
swapped under the query service *and* under every live connection's
session, and its generation is set to the applied commit count — a
monotone stamp, so result/plan caches keyed on generation can never
serve a pre-resync answer for a post-resync database.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import Optional

from repro.geometry.point import Point
from repro.psql.result import QueryResult
from repro.relational.catalog import Database
from repro.relational.rowcodec import decode_row
from repro.rtree.search import knn_search
from repro.server import binproto, protocol
from repro.server.server import PsqlServer, ServerConfig, _Connection
from repro.server.service import STORAGE_ERRORS
from repro.storage import failpoints
from repro.cluster.dataset import GID_COLUMN
from repro.cluster.replica import LogShipper

__all__ = ["FP_SHARD_COMMIT", "ShardServer"]

FP_SHARD_COMMIT = failpoints.declare(
    "cluster.shard.commit",
    "shard INSERT: after the durable commit, before the ack is written")

_MUTATING_VERBS = ("INSERT", "DELETE", "REPACK")


class ShardServer(PsqlServer):
    """One cluster node: a primary shard or a read replica.

    Args:
        config: base server parameters (thread executor assumed — the
            cluster tier swaps databases at runtime, which process pools
            cannot see).
        db: the node's database; replicas may omit it when a *shipper*
            is given (the constructor bootstraps with one resync).
        role: ``"primary"`` or ``"replica"``.
        shard_id: this node's shard id (surfaces in ``STATS``).
        shipper: the replica's log-shipping feed; required for replicas.
        poll_interval: replica resync period in seconds; 0 disables the
            timer (tests then drive replication with ``REPLAY``).
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 db: Optional[Database] = None, *,
                 role: str = "primary", shard_id: int = 0,
                 shipper: Optional[LogShipper] = None,
                 poll_interval: float = 0.0,
                 session_factory=None):
        if role not in ("primary", "replica"):
            raise ValueError(f"unknown shard role {role!r}")
        if role == "replica" and shipper is None:
            raise ValueError("a replica needs a log shipper")
        if db is None and shipper is not None:
            db, _commits = shipper.apply_once()
            db._generation = shipper.applied_commits
        super().__init__(config=config, db=db,
                         session_factory=session_factory)
        self.role = role
        self.shard_id = shard_id
        self.shipper = shipper
        self.poll_interval = poll_interval
        self._mutate_lock = threading.Lock()
        # relation -> {gid -> rid}, built lazily on first mutation so
        # idempotence checks and DELETE targeting stay O(1) per op.
        self._gid_maps: dict[str, dict[int, object]] = {}
        self._replay_task: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        if self.role == "replica" and self.poll_interval > 0:
            self._replay_task = asyncio.get_running_loop().create_task(
                self._replay_loop())

    async def stop(self) -> None:
        if self._replay_task is not None:
            self._replay_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._replay_task
            self._replay_task = None
        await super().stop()

    async def _replay_loop(self) -> None:
        while True:
            try:
                await self._apply_replay()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - keep replicating
                self.registry.bump("cluster.replica.apply_errors")
            await asyncio.sleep(self.poll_interval)

    # -- verb dispatch -------------------------------------------------------

    def verbs(self) -> tuple[str, ...]:
        extra = (("KNN", "REPLAY") if self.role == "replica"
                 else ("INSERT", "DELETE", "KNN"))
        return super().verbs() + extra

    async def _dispatch(self, conn: _Connection, verb: str,
                        rest: str) -> bool:
        if self.role == "replica" and verb in _MUTATING_VERBS:
            await self._write_error(
                conn, "ReadOnly",
                f"{verb} rejected: this node is a read replica; "
                f"send writes to the primary")
            return True
        if verb == "INSERT":
            await self._handle_insert(conn, rest)
        elif verb == "DELETE":
            await self._handle_delete(conn, rest)
        elif verb == "KNN":
            await self._handle_knn(conn, rest)
        elif verb == "REPLAY":
            await self._handle_replay(conn)
        else:
            return await super()._dispatch(conn, verb, rest)
        return True

    # -- mutations (primary) -------------------------------------------------

    async def _handle_insert(self, conn: _Connection, rest: str) -> None:
        parts = rest.split()
        if len(parts) != 2:
            await self._write_error(conn, "ProtocolError",
                                    "usage: INSERT <relation> <hexrow>")
            return
        relation_name, hexrow = parts
        try:
            row = decode_row(bytes.fromhex(hexrow))
        except (ValueError, KeyError) as exc:
            await self._write_error(conn, "ProtocolError",
                                    f"bad row payload: {exc}")
            return
        if GID_COLUMN not in row:
            await self._write_error(conn, "ProtocolError",
                                    f"row has no {GID_COLUMN!r} column")
            return
        self.registry.bump("cluster.shard.inserts")
        try:
            inserted = await asyncio.to_thread(
                self._do_insert, relation_name, row)
        except (KeyError, ValueError) as exc:
            self.registry.bump("server.errors")
            await self._write_error(conn, type(exc).__name__,
                                    str(exc).strip("'\""))
            return
        except STORAGE_ERRORS as exc:
            conn.errors += 1
            self.registry.bump("server.errors")
            self.registry.bump("server.io_errors")
            await self._write_error(conn, type(exc).__name__, str(exc))
            return
        await self._reply_ack(conn, "insert", self.generation,
                              int(inserted))

    def _do_insert(self, relation_name: str, row: dict) -> bool:
        with self._mutate_lock:
            gid_map = self._gid_map(relation_name)
            gid = row[GID_COLUMN]
            if gid in gid_map:
                return False
            rid = self.service.db.insert(relation_name, row)
            gid_map[gid] = rid
            if failpoints.ACTIVE:
                failpoints.hit(FP_SHARD_COMMIT)
            return True

    async def _handle_delete(self, conn: _Connection, rest: str) -> None:
        parts = rest.split()
        if len(parts) != 2:
            await self._write_error(conn, "ProtocolError",
                                    "usage: DELETE <relation> <gid>")
            return
        relation_name, gid_text = parts
        try:
            gid = int(gid_text)
        except ValueError:
            await self._write_error(conn, "ProtocolError",
                                    f"bad gid {gid_text!r}")
            return
        self.registry.bump("cluster.shard.deletes")
        try:
            deleted = await asyncio.to_thread(
                self._do_delete, relation_name, gid)
        except (KeyError, ValueError) as exc:
            self.registry.bump("server.errors")
            await self._write_error(conn, type(exc).__name__,
                                    str(exc).strip("'\""))
            return
        except STORAGE_ERRORS as exc:
            conn.errors += 1
            self.registry.bump("server.errors")
            self.registry.bump("server.io_errors")
            await self._write_error(conn, type(exc).__name__, str(exc))
            return
        await self._reply_ack(conn, "delete", self.generation,
                              int(deleted))

    def _do_delete(self, relation_name: str, gid: int) -> bool:
        with self._mutate_lock:
            gid_map = self._gid_map(relation_name)
            rid = gid_map.pop(gid, None)
            if rid is None:
                return False
            self.service.db.delete(relation_name, rid)
            return True

    def _gid_map(self, relation_name: str) -> dict[int, object]:
        gid_map = self._gid_maps.get(relation_name)
        if gid_map is None:
            relation = self.service.db.relation(relation_name)
            gid_map = {row[GID_COLUMN]: rid
                       for rid, row in relation.rows()}
            self._gid_maps[relation_name] = gid_map
        return gid_map

    # -- KNN (both roles) ----------------------------------------------------

    async def _handle_knn(self, conn: _Connection, rest: str) -> None:
        parts = rest.split()
        if len(parts) not in (5, 6):
            await self._write_error(
                conn, "ProtocolError",
                "usage: KNN <picture> <relation> <x> <y> <k> [column]")
            return
        picture, relation_name = parts[0], parts[1]
        column = parts[5] if len(parts) == 6 else "loc"
        try:
            x, y, k = float(parts[2]), float(parts[3]), int(parts[4])
        except ValueError:
            await self._write_error(conn, "ProtocolError",
                                    "KNN x/y must be numbers, k an int")
            return
        if k < 0:
            await self._write_error(conn, "ProtocolError",
                                    "KNN k must be >= 0")
            return
        self.registry.bump("cluster.shard.knn")
        try:
            rows = await asyncio.to_thread(
                self._do_knn, picture, relation_name, x, y, k, column)
        except (KeyError, ValueError) as exc:
            self.registry.bump("server.errors")
            await self._write_error(conn, type(exc).__name__,
                                    str(exc).strip("'\""))
            return
        except STORAGE_ERRORS as exc:
            conn.errors += 1
            self.registry.bump("server.errors")
            self.registry.bump("server.io_errors")
            await self._write_error(conn, type(exc).__name__, str(exc))
            return
        result = QueryResult(columns=("distance", "gid"), rows=rows)
        await self._reply_result(
            conn, "fresh", self.generation, len(rows),
            tuple(protocol.encode_result(result)),
            binproto.encode_result_body(result))

    def _do_knn(self, picture: str, relation_name: str, x: float,
                y: float, k: int, column: str) -> list[tuple[float, int]]:
        db = self.service.db
        tree = db.picture(picture).index(relation_name, column)
        relation = db.relation(relation_name)
        hits = knn_search(tree, Point(x, y), k)
        rows = [(float(dist), int(relation.get(rid)[GID_COLUMN]))
                for dist, rid in hits]
        rows.sort()
        return rows

    # -- replication (replica) ----------------------------------------------

    async def _handle_replay(self, conn: _Connection) -> None:
        if self.role != "replica":
            await self._write_error(
                conn, "ProtocolError",
                "REPLAY is only valid on a read replica")
            return
        try:
            commits = await self._apply_replay()
        except STORAGE_ERRORS as exc:
            conn.errors += 1
            self.registry.bump("server.errors")
            self.registry.bump("server.io_errors")
            await self._write_error(conn, type(exc).__name__, str(exc))
            return
        await self._reply_ack(conn, "replay", self.generation, commits)

    async def _apply_replay(self) -> int:
        assert self.shipper is not None
        db, commits = await asyncio.to_thread(self.shipper.apply_once)
        # Stamp the fresh database with the commit count it reflects:
        # monotone across resyncs, so generation-keyed result and plan
        # caches can never alias a pre-resync answer onto it.
        db._generation = commits
        self.service.db = db
        for live in self._connections.values():
            live.session.db = db
            live.session._plans.clear()
        self._gid_maps.clear()
        self.registry.bump("cluster.replica.replays")
        return commits

    # -- metrics -------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        out = super().stats()
        out["cluster.shard_id"] = float(self.shard_id)
        out["cluster.is_primary"] = float(self.role == "primary")
        if self.shipper is not None:
            lag = self.shipper.lag()
            out["cluster.replica.applies"] = float(self.shipper.applies)
            out["cluster.replica.applied_commits"] = float(
                lag.applied_commits)
            out["cluster.replica.primary_commits"] = float(
                lag.primary_commits)
            out["cluster.replica.commits_behind"] = float(
                lag.commits_behind)
            out["cluster.replica.lag_seconds"] = lag.seconds_behind
        return out
