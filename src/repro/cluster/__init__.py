"""Scale-out tier: spatial sharding with a scatter-gather router.

The cluster partitions the universe into Hilbert-key ranges
(:mod:`~repro.cluster.partition`), runs one full PSQL server per range
(:mod:`~repro.cluster.shardserver`) plus optional WAL log-shipped read
replicas (:mod:`~repro.cluster.replica`), and fronts them with an
asyncio router (:mod:`~repro.cluster.router`) that speaks the existing
wire protocol: inserts/deletes route by key, window/kNN/join queries
scatter to overlapping shards and gather with gid-dedup
(:mod:`~repro.cluster.routing`).  See DESIGN.md §12.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.dataset import (GID_COLUMN, ClusterDataset,
                                   build_database, dataset_from_database,
                                   materialize_database)
from repro.cluster.launcher import LocalCluster, ProcessCluster
from repro.cluster.partition import ShardMap
from repro.cluster.replica import LagInfo, LogShipper
from repro.cluster.router import (BackendDownError, BackendSpec, Router,
                                  RouterConfig)
from repro.cluster.routing import (ClusterRoutingError, RoutePlan,
                                   execute_local, merge_knn, merge_rows,
                                   plan_route, shard_targets)
from repro.cluster.shardserver import ShardServer

__all__ = [
    "BackendDownError", "BackendSpec", "ClusterClient", "ClusterDataset",
    "ClusterRoutingError", "GID_COLUMN", "LagInfo", "LocalCluster",
    "LogShipper", "ProcessCluster", "RoutePlan", "Router", "RouterConfig",
    "ShardMap", "ShardServer", "build_database", "dataset_from_database",
    "execute_local", "materialize_database", "merge_knn", "merge_rows",
    "plan_route", "shard_targets",
]
