"""WAL log-shipping: feed a read replica from its primary's redo log.

The durability work of PR 3 left each persistent relation with a
page-level redo log of full after-images (:mod:`repro.storage.wal`).
That log is a complete, replayable history of the heap file — which
makes it a log-shipping feed for free: a replica that can see the
primary's files (this tier targets many processes on one machine)
rebuilds the primary's exact state by

1. copying the primary's heap file (the bootstrap snapshot — possibly
   torn mid-write, which is harmless: the pager is no-steal, so any
   in-flight data-file write already has its committed after-image in
   the log);
2. overlaying every committed page image from the primary's WAL (full
   images make this idempotent — re-applying is a no-op);
3. decoding the rows and materialising a fresh in-memory database to
   serve reads from.

Each :meth:`LogShipper.apply_once` performs a full resync of all three
steps; between applies the replica serves the previous snapshot.  Lag
is measured in *commits*: the primary's WAL commit count (monotone —
cluster primaries never checkpoint-truncate, see
:func:`repro.cluster.dataset.build_database`) minus the count the
replica last applied.  A paused replica therefore reports monotonically
growing lag, which is what the router's read-routing threshold keys on.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro import obs
from repro.relational.catalog import Database
from repro.relational.persistent import PersistentRelation
from repro.storage import failpoints
from repro.storage.wal import WriteAheadLog
from repro.cluster.dataset import ClusterDataset, materialize_database

__all__ = ["FP_REPLICA_APPLY", "LagInfo", "LogShipper"]

FP_REPLICA_APPLY = failpoints.declare(
    "cluster.replica.apply",
    "replica replay: after reading shipped pages, before applying them")


@dataclass(frozen=True)
class LagInfo:
    """How far a replica trails its primary."""

    primary_commits: int
    applied_commits: int
    seconds_behind: float

    @property
    def commits_behind(self) -> int:
        return max(0, self.primary_commits - self.applied_commits)

    @property
    def caught_up(self) -> bool:
        return self.commits_behind == 0


class LogShipper:
    """Ships one primary shard's WALs into a replica-local database.

    Args:
        dataset: the cluster dataset (schema, pictures, locations — the
            rows come from the shipped pages, never from the seeds).
        primary_data_dir: the primary shard's heap/WAL directory.
        replica_dir: this replica's private directory for page
            snapshots.
        page_size: heap-file page geometry (must match the primary's).
        clock: injectable monotonic clock, for tests that need to drive
            lag-seconds explicitly.
    """

    def __init__(self, dataset: ClusterDataset, primary_data_dir: str,
                 replica_dir: str, page_size: int = 4096,
                 clock: Callable[[], float] = time.monotonic):
        self.dataset = dataset
        self.primary_data_dir = primary_data_dir
        self.replica_dir = replica_dir
        self.page_size = page_size
        self.clock = clock
        self.applied_commits = 0
        self.applies = 0
        self._last_caught_up_at = clock()
        os.makedirs(replica_dir, exist_ok=True)

    # -- feed inspection ----------------------------------------------------

    def _heap_path(self, relation: str) -> str:
        return os.path.join(self.primary_data_dir, f"{relation}.heap")

    def _copy_path(self, relation: str) -> str:
        return os.path.join(self.replica_dir, f"{relation}.heap")

    def primary_commits(self) -> int:
        """Total committed batches across the primary's relation WALs.

        Scans the logs read-only; safe against a concurrently appending
        primary (a torn tail record simply ends the scan, exactly as it
        would during crash recovery).
        """
        total = 0
        for rel in self.dataset.relations:
            wal_path = self._heap_path(rel.name) + ".wal"
            if not os.path.exists(wal_path):
                continue
            with WriteAheadLog(wal_path, self.page_size,
                               sync="none") as wal:
                _images, commits = wal.committed_pages()
            total += commits
        return total

    def lag(self, now: Optional[float] = None) -> LagInfo:
        """Current lag; *now* defaults to the injected clock."""
        now = self.clock() if now is None else now
        primary = self.primary_commits()
        behind = max(0, primary - self.applied_commits)
        seconds = (now - self._last_caught_up_at) if behind else 0.0
        return LagInfo(primary_commits=primary,
                       applied_commits=self.applied_commits,
                       seconds_behind=seconds)

    # -- replay --------------------------------------------------------------

    def apply_once(self) -> tuple[Database, int]:
        """One full resync: snapshot + committed overlay + materialise.

        Returns the freshly materialised database and the commit count
        it reflects.  The caller (the replica server) swaps the database
        under its query service; this object only tracks feed positions.
        """
        rows_by_relation: dict[str, list[dict[str, Any]]] = {}
        commits_seen = 0
        for rel in self.dataset.relations:
            heap_path = self._heap_path(rel.name)
            copy_path = self._copy_path(rel.name)
            shutil.copyfile(heap_path, copy_path)
            wal_path = heap_path + ".wal"
            images: dict[int, bytes] = {}
            if os.path.exists(wal_path):
                with WriteAheadLog(wal_path, self.page_size,
                                   sync="none") as wal:
                    images, commits = wal.committed_pages()
                commits_seen += commits
            if failpoints.ACTIVE:
                failpoints.hit(FP_REPLICA_APPLY)
            with open(copy_path, "r+b") as f:
                for page_no, raw in images.items():
                    f.seek(page_no * self.page_size)
                    f.write(raw)
            stored = PersistentRelation(rel.name, list(rel.columns),
                                        copy_path, page_size=self.page_size,
                                        durable=False)
            try:
                rows_by_relation[rel.name] = [row for _rid, row
                                              in stored.rows()]
            finally:
                stored.close()
        db = materialize_database(self.dataset, rows_by_relation)
        self.applied_commits = commits_seen
        self.applies += 1
        self._last_caught_up_at = self.clock()
        if obs.ENABLED:
            reg = obs.active()
            reg.bump("cluster.replica.applies")
            reg.bump("cluster.replica.rows_materialized",
                     sum(len(r) for r in rows_by_relation.values()))
        return db, commits_seen
