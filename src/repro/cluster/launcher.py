"""Cluster launchers: wire shards, replicas and a router together.

Two flavours:

- :class:`LocalCluster` runs every node in-process on background
  threads (each node owns its event loop, exactly like the embedded
  single server).  This is what the equivalence tests, the replica
  tests and the smoke check use — fast to start, fully deterministic,
  no subprocess management.
- :class:`ProcessCluster` runs every node as a real subprocess of
  ``python -m repro.cluster``.  This is what the crash matrix and the
  scaling benchmark use: a subprocess can be SIGKILLed mid-commit and
  restarted on the same port and data directory, and separate processes
  actually scale across cores.

Both build identical node state from a shared
:class:`~repro.cluster.dataset.ClusterDataset` and
:class:`~repro.cluster.partition.ShardMap`, so a query answered by
either cluster matches the single-server oracle built from the same
dataset.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from typing import Optional

from repro.server.server import ServerConfig
from repro.cluster.client import ClusterClient
from repro.cluster.dataset import ClusterDataset, build_database
from repro.cluster.partition import ShardMap
from repro.cluster.replica import LogShipper
from repro.cluster.router import BackendSpec, Router, RouterConfig
from repro.cluster.shardserver import ShardServer

__all__ = ["LocalCluster", "ProcessCluster"]


class LocalCluster:
    """An in-process cluster: N shard servers (+ replicas) + a router.

    Args:
        dataset: the shared cluster dataset.
        nshards: primary shard count.
        replicas_per_shard: log-shipped read replicas per primary
            (requires *data_root* — replication feeds on WAL files).
        data_root: directory for shard heap/WAL files; ``None`` keeps
            primaries purely in memory (no replicas possible).
        router_config: router knobs; ``None`` uses defaults (ephemeral
            port, deterministic health refresh on every read).
        shard_workers / shard_cache_size: per-shard server knobs.
        replica_poll_interval: replica resync timer; 0 (default) means
            replication only advances when ``REPLAY`` is sent — which is
            how tests stage lag deterministically.
        clock: injectable clock handed to every replica's shipper.
    """

    def __init__(self, dataset: ClusterDataset, nshards: int,
                 replicas_per_shard: int = 0,
                 data_root: Optional[str] = None,
                 router_config: Optional[RouterConfig] = None,
                 shard_workers: int = 2, shard_cache_size: int = 64,
                 replica_poll_interval: float = 0.0,
                 order: int = 5, clock=time.monotonic):
        if replicas_per_shard and data_root is None:
            raise ValueError("replicas need data_root (they tail the "
                             "primaries' WAL files)")
        self.dataset = dataset
        self.shardmap = ShardMap(dataset.universe, nshards, order=order)
        self.shards: list[ShardServer] = []
        self.replicas: list[list[ShardServer]] = []
        self.shippers: list[list[LogShipper]] = []
        specs: list[BackendSpec] = []
        for sid in range(nshards):
            data_dir = None
            if data_root is not None:
                data_dir = os.path.join(data_root, f"shard{sid}")
                os.makedirs(data_dir, exist_ok=True)
            db = build_database(dataset, self.shardmap, sid,
                                data_dir=data_dir)
            server = ShardServer(
                ServerConfig(port=0, workers=shard_workers,
                             cache_size=shard_cache_size),
                db=db, role="primary", shard_id=sid)
            host, port = server.start_background()
            self.shards.append(server)
            specs.append(BackendSpec(f"shard{sid}", host, port, sid,
                                     "primary"))
            shard_replicas: list[ShardServer] = []
            shard_shippers: list[LogShipper] = []
            for rid in range(replicas_per_shard):
                replica_dir = os.path.join(
                    data_root, f"shard{sid}-replica{rid}")
                shipper = LogShipper(dataset, data_dir, replica_dir,
                                     clock=clock)
                replica = ShardServer(
                    ServerConfig(port=0, workers=shard_workers,
                                 cache_size=shard_cache_size),
                    role="replica", shard_id=sid, shipper=shipper,
                    poll_interval=replica_poll_interval)
                rhost, rport = replica.start_background()
                shard_replicas.append(replica)
                shard_shippers.append(shipper)
                specs.append(BackendSpec(f"shard{sid}-replica{rid}",
                                         rhost, rport, sid, "replica"))
            self.replicas.append(shard_replicas)
            self.shippers.append(shard_shippers)
        self.backends = specs
        self.router = Router(router_config or RouterConfig(),
                             dataset, self.shardmap, specs)
        self.router_host, self.router_port = self.router.start_background()

    def client(self, timeout: Optional[float] = 30.0) -> ClusterClient:
        """A fresh blocking client connected to the router."""
        return ClusterClient(self.router_host, self.router_port,
                             timeout=timeout)

    def replica_client(self, shard_id: int, replica: int = 0,
                       timeout: Optional[float] = 30.0) -> ClusterClient:
        """A client pointed directly at one replica (for REPLAY etc.)."""
        server = self.replicas[shard_id][replica]
        return ClusterClient(server.config.host, server.port,
                             timeout=timeout)

    def stop(self) -> None:
        self.router.stop_background()
        for shard_replicas in self.replicas:
            for replica in shard_replicas:
                replica.stop_background()
        for shard in self.shards:
            shard.stop_background()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


class _Proc:
    """One managed cluster subprocess and how to respawn it."""

    def __init__(self, argv: list[str], env: Optional[dict] = None):
        self.argv = argv
        self.env = env
        self.proc: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None

    def spawn(self, port: Optional[int] = None,
              env: Optional[dict] = None,
              timeout: float = 60.0) -> int:
        """Start (or restart) the process; returns its bound port.

        A restart pins ``--port`` to the original one so routers keep
        their backend addresses across crashes.
        """
        argv = list(self.argv)
        if port is not None:
            argv += ["--port", str(port)]
        full_env = dict(os.environ)
        if self.env:
            full_env.update(self.env)
        if env:
            full_env.update(env)
        self.proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=full_env, text=True)
        deadline = time.monotonic() + timeout
        assert self.proc.stdout is not None
        while True:
            line = self.proc.stdout.readline()
            if line.startswith("PORT "):
                self.port = int(line.split()[1])
                return self.port
            if not line or time.monotonic() > deadline:
                rc = self.proc.poll()
                raise RuntimeError(
                    f"cluster process failed to hand back a port "
                    f"(exit={rc}, argv={argv})")

    def kill(self) -> None:
        """SIGKILL — the crash matrix's hammer; no cleanup runs."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait()

    def terminate(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()
                self.proc.wait()


class ProcessCluster:
    """A cluster of real subprocesses (see module docstring).

    Every node is ``python -m repro.cluster`` building the demo dataset
    at *scale*; shard state lives under *data_root*, so a killed shard
    restarted on the same directory recovers through WAL replay.

    Args:
        nshards / replicas_per_shard / data_root: topology.
        scale, seed: demo dataset parameters (must match across nodes).
        replica_poll_interval: replica resync timer (subprocess replicas
            normally poll; tests can still REPLAY directly).
        shard_env: extra environment for shard processes — e.g.
            ``{"REPRO_FAILPOINTS": "cluster.shard.commit=crash:hard"}``
            arms the crash matrix's failpoints inside the child.
        replica_env: likewise for replica processes.
    """

    def __init__(self, nshards: int, data_root: str,
                 replicas_per_shard: int = 0, scale: int = 1,
                 seed: int = 7, replica_poll_interval: float = 0.2,
                 router_cache_size: int = 256,
                 replica_lag_threshold: float = 0.0,
                 shard_env: Optional[dict] = None,
                 replica_env: Optional[dict] = None):
        self.nshards = nshards
        self.data_root = data_root
        base = [sys.executable, "-m", "repro.cluster"]
        common = ["--scale", str(scale), "--seed", str(seed),
                  "--nshards", str(nshards)]
        self._shards: list[_Proc] = []
        self._replicas: list[list[_Proc]] = []
        specs: list[str] = []
        for sid in range(nshards):
            data_dir = os.path.join(data_root, f"shard{sid}")
            os.makedirs(data_dir, exist_ok=True)
            proc = _Proc(base + ["shard", "--shard-id", str(sid),
                                 "--data-dir", data_dir] + common,
                         env=shard_env)
            port = proc.spawn()
            self._shards.append(proc)
            specs.append(f"shard{sid}:127.0.0.1:{port}:{sid}:primary")
            replicas: list[_Proc] = []
            for rid in range(replicas_per_shard):
                replica_dir = os.path.join(data_root,
                                           f"shard{sid}-replica{rid}")
                rproc = _Proc(
                    base + ["replica", "--shard-id", str(sid),
                            "--primary-data-dir", data_dir,
                            "--replica-dir", replica_dir,
                            "--poll-interval",
                            str(replica_poll_interval)] + common,
                    env=replica_env)
                rport = rproc.spawn()
                replicas.append(rproc)
                specs.append(f"shard{sid}-replica{rid}:127.0.0.1:"
                             f"{rport}:{sid}:replica")
            self._replicas.append(replicas)
        router_argv = base + ["router"] + common + [
            "--cache-size", str(router_cache_size),
            "--lag-threshold", str(replica_lag_threshold)]
        for spec in specs:
            router_argv += ["--backend", spec]
        self._router = _Proc(router_argv)
        self.router_port = self._router.spawn()
        self.router_host = "127.0.0.1"

    def client(self, timeout: Optional[float] = 30.0) -> ClusterClient:
        return ClusterClient(self.router_host, self.router_port,
                             timeout=timeout)

    def replica_client(self, shard_id: int, replica: int = 0,
                       timeout: Optional[float] = 30.0) -> ClusterClient:
        return ClusterClient("127.0.0.1",
                             self._replicas[shard_id][replica].port,
                             timeout=timeout)

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one primary (mid-commit, if a failpoint armed it)."""
        self._shards[shard_id].kill()

    def wait_shard_exit(self, shard_id: int, timeout: float = 30.0) -> int:
        """Wait for a (crashing) shard process to exit; its return code."""
        proc = self._shards[shard_id].proc
        assert proc is not None
        return proc.wait(timeout=timeout)

    def restart_shard(self, shard_id: int,
                      env: Optional[dict] = None) -> None:
        """Bring a killed shard back on the same port and data dir.

        Reopening the heap files replays their WALs — recovery is the
        ordinary single-node path, the cluster just points the old
        address at the recovered data.
        """
        proc = self._shards[shard_id]
        proc.spawn(port=proc.port, env=env or {"REPRO_FAILPOINTS": ""})

    def kill_replica(self, shard_id: int, replica: int = 0) -> None:
        self._replicas[shard_id][replica].kill()

    def wait_replica_exit(self, shard_id: int, replica: int = 0,
                          timeout: float = 30.0) -> int:
        proc = self._replicas[shard_id][replica].proc
        assert proc is not None
        return proc.wait(timeout=timeout)

    def restart_replica(self, shard_id: int, replica: int = 0,
                        env: Optional[dict] = None) -> None:
        proc = self._replicas[shard_id][replica]
        proc.spawn(port=proc.port, env=env or {"REPRO_FAILPOINTS": ""})

    def stop(self) -> None:
        self._router.terminate()
        for replicas in self._replicas:
            for proc in replicas:
                proc.terminate()
        for proc in self._shards:
            proc.terminate()

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
