"""Demo cluster datasets — the sharded twins of the server demo DB.

The single-server demo factory builds the deterministic US-map database
every test and benchmark knows; these helpers snapshot it into a
:class:`~repro.cluster.dataset.ClusterDataset` (tagging every row with
its gid), so a cluster's shards, its replicas and the equivalence
tests' single-server oracle all derive from identical bytes.
"""

from __future__ import annotations

from repro.server.demo import bench_database, demo_database
from repro.cluster.dataset import ClusterDataset, dataset_from_database

__all__ = ["bench_dataset", "demo_dataset"]


def demo_dataset(scale: int = 1, seed: int = 7) -> ClusterDataset:
    """The demo database as a shardable dataset."""
    return dataset_from_database(demo_database(scale=scale, seed=seed))


def bench_dataset() -> ClusterDataset:
    """The benchmark-sized demo dataset (``REPRO_DEMO_SCALE`` applies)."""
    return dataset_from_database(bench_database())
