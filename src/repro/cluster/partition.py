"""Hilbert-range spatial partitioning for the cluster tier.

The bulk loader already orders objects by the Hilbert curve index of
their MBR centers (:func:`repro.rtree.bulkload.hilbert_sort_key`); a
shard is simply a contiguous range of that key space.  A
:class:`ShardMap` materialises the mapping both ways:

- *key -> shard*: the curve of ``4**order`` cells is cut into
  ``nshards`` near-equal contiguous ranges, so the sort key that packs
  a tree also names the shard that owns it;
- *rect -> shards*: every grid cell a rectangle touches is looked up in
  a precomputed cell->shard table, yielding the set of shards whose
  territory the rectangle overlaps.

The placement contract that makes scatter-gather exact (see
DESIGN.md §12): an object is **stored on every shard its MBR
overlaps**, and a query is **sent to every shard its window (or the
full universe, for non-window queries) overlaps**.  If an object
qualifies for a query, the two geometries intersect; any grid cell
inside that intersection belongs to a shard that both stores the object
and receives the query — so the union of shard answers, deduplicated,
equals the single-tree answer.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rtree.bulkload import hilbert_sort_key
from repro.rtree.hilbert import hilbert_d

__all__ = ["ShardMap"]


class ShardMap:
    """Partition of a universe into ``nshards`` Hilbert-key ranges.

    Args:
        universe: the picture universe being partitioned.
        nshards: number of primary shards (>= 1).
        order: Hilbert curve order of the *routing* grid — the universe
            is cut into ``2**order`` cells per side.  This is coarser
            than the bulk loader's sort-key order (16): routing only
            needs enough resolution to separate shards, and a coarse
            grid keeps the cell->shard table tiny (``4**order`` bytes).
    """

    def __init__(self, universe: Rect, nshards: int, order: int = 5):
        if nshards < 1:
            raise ValueError("nshards must be positive")
        if not 1 <= order <= 12:
            raise ValueError("routing grid order must be in [1, 12]")
        if not universe.is_valid() or universe.area() <= 0:
            raise ValueError(f"invalid universe {universe!r}")
        self.universe = universe
        self.nshards = nshards
        self.order = order
        self.side = 1 << order
        total = self.side * self.side
        #: half-open hilbert-key range [lo, hi) per shard, contiguous
        #: and covering [0, 4**order) exactly.
        self.ranges: list[tuple[int, int]] = [
            (i * total // nshards, (i + 1) * total // nshards)
            for i in range(nshards)]
        self._range_starts = [lo for lo, _hi in self.ranges]
        # cell (cx, cy) -> shard id, precomputed once: shards_for_rect
        # walks this table instead of re-deriving curve positions.
        self._cell_shard = bytearray(total) if nshards <= 255 else None
        self._cell_shard_list: list[int] = []
        for cy in range(self.side):
            for cx in range(self.side):
                sid = self.shard_for_key(hilbert_d(order, cx, cy))
                if self._cell_shard is not None:
                    self._cell_shard[cy * self.side + cx] = sid
                else:  # pragma: no cover - >255 shards is hypothetical
                    self._cell_shard_list.append(sid)

    # -- key- and point-level lookups ---------------------------------------

    def shard_for_key(self, key: int) -> int:
        """The shard owning Hilbert routing key *key*."""
        total = self.side * self.side
        if not 0 <= key < total:
            raise ValueError(f"key {key} outside [0, {total})")
        return bisect_right(self._range_starts, key) - 1

    def shard_for_point(self, point: Point) -> int:
        """The home shard of *point* (clamped into the universe)."""
        cx, cy = self._cell_of(point.x, point.y)
        return self._shard_at(cx, cy)

    def shard_for_rect(self, rect: Rect) -> int:
        """The home shard of *rect* — where its bulk-load sort key lands.

        Uses the same center-of-MBR key as
        :func:`repro.rtree.bulkload.hilbert_sort_key` (at this map's
        routing order), so home-shard assignment agrees with the order
        objects stream through the bulk loader.
        """
        key = hilbert_sort_key(rect, self.universe, self.order)
        return self.shard_for_key(key)

    # -- rect-level fan-out ---------------------------------------------------

    def shards_for_rect(self, rect: Rect) -> list[int]:
        """Every shard whose territory *rect* overlaps, ascending.

        Degenerate and out-of-universe rectangles clamp to the nearest
        cells, exactly like :func:`~repro.rtree.hilbert.hilbert_key`
        clamps points — placement and routing must agree on boundary
        objects or boundary-spanning rects would silently vanish.
        """
        cx1, cy1 = self._cell_of(rect.x1, rect.y1)
        cx2, cy2 = self._cell_of(rect.x2, rect.y2)
        out: set[int] = set()
        for cy in range(cy1, cy2 + 1):
            row = cy * self.side
            for cx in range(cx1, cx2 + 1):
                out.add(self._shard_at_index(row + cx))
                if len(out) == self.nshards:
                    return sorted(out)
        return sorted(out)

    def all_shards(self) -> list[int]:
        return list(range(self.nshards))

    # -- internals -----------------------------------------------------------

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        u = self.universe
        fx = (x - u.x1) / (u.x2 - u.x1)
        fy = (y - u.y1) / (u.y2 - u.y1)
        cx = min(self.side - 1, max(0, int(fx * self.side)))
        cy = min(self.side - 1, max(0, int(fy * self.side)))
        return cx, cy

    def _shard_at(self, cx: int, cy: int) -> int:
        return self._shard_at_index(cy * self.side + cx)

    def _shard_at_index(self, idx: int) -> int:
        if self._cell_shard is not None:
            return self._cell_shard[idx]
        return self._cell_shard_list[idx]  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardMap(nshards={self.nshards}, order={self.order}, "
                f"universe={self.universe!r})")
