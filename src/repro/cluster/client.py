"""Blocking client for the cluster router (and for shard servers).

Extends the single-server :class:`~repro.server.client.Client` with the
cluster verbs — the base verbs (``query``/``explain``/``repack``/
``stats``/``ping``) work against a router unchanged, since the router
speaks the same protocol.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.relational.rowcodec import encode_row
from repro.server.client import Client
from repro.server.protocol import Response
from repro.cluster.dataset import GID_COLUMN

__all__ = ["ClusterClient"]


class ClusterClient(Client):
    """One blocking connection to a :class:`~repro.cluster.router.Router`.

    Also usable against an individual
    :class:`~repro.cluster.shardserver.ShardServer` for surgery/tests —
    the verbs are the same, only gid assignment differs (a shard never
    assigns gids; the router does).
    """

    def knn(self, picture: str, relation: str, x: float, y: float,
            k: int, column: str = "loc") -> Response:
        """The k nearest objects to ``(x, y)`` as ``(distance, gid)`` rows."""
        return self._roundtrip(
            f"KNN {picture} {relation} {x!r} {y!r} {k} {column}")

    def insert_row(self, relation: str, row: dict[str, Any],
                   gid: Optional[int] = None) -> Response:
        """Insert *row* through the router.

        Returns the acknowledgement; ``response.nrows`` is the assigned
        gid.  Pass *gid* to retry a possibly-partial insert — shard
        inserts are idempotent by gid, so the retry converges instead of
        duplicating.
        """
        if gid is not None:
            row = {GID_COLUMN: gid, **row}
        return self._roundtrip(
            f"INSERT {relation} {encode_row(row).hex()}")

    def delete_row(self, relation: str, gid: int) -> Response:
        """Delete the row with this gid everywhere it is stored."""
        return self._roundtrip(f"DELETE {relation} {gid}")

    def replay(self) -> Response:
        """Force one log-shipping resync (replica servers only)."""
        return self._roundtrip("REPLAY")

    def command(self, line: str) -> Response:
        """Send a raw protocol line (test/diagnostic escape hatch)."""
        return self._roundtrip(line)
