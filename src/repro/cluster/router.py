"""The scatter-gather router: one endpoint over a sharded cluster.

The router speaks the same line protocol as a single
:class:`~repro.server.server.PsqlServer`, so every existing client
works unchanged — point it at the router and ``QUERY``/``EXPLAIN``/
``REPACK``/``ADVISE``/``HEALTH``/``STATS``/``PING`` behave as before,
plus the cluster verbs ``INSERT``/``DELETE``/``KNN``.  Per command:

- ``QUERY``: :func:`~repro.cluster.routing.plan_route` classifies the
  text; window queries go only to shards the window overlaps, the rest
  broadcast.  Each target shard runs the gid-rewritten text; answers are
  unioned, deduplicated on gid and sorted
  (:func:`~repro.cluster.routing.merge_rows`).
- ``EXPLAIN``: scattered like the query it wraps; per-shard plans come
  back stitched by :func:`~repro.psql.planner.merge_shard_plans`.
- ``INSERT``: the router assigns the next gid, then stores the row on
  *every* primary whose key range its geometry overlaps (the
  duplicated-storage invariant queries rely on).  ``DELETE`` broadcasts.
- ``KNN``: every shard answers its local k best; the router keeps the
  global k smallest ``(distance, gid)``.
- ``ADVISE``/``HEALTH``: broadcast to every primary; each shard's
  advisor report comes back stitched under per-shard headers (the same
  shape as routed ``EXPLAIN``), so degradation on *one* shard stays
  attributable.  Never cached — reports reflect live counters.

**Read routing.**  Each shard may have log-shipped replicas.  Reads
rotate over the primary and every replica whose reported lag is within
``replica_lag_threshold`` commits (default 0: only fully caught-up
replicas serve reads); replica health is refreshed from its ``STATS``
when older than ``health_interval`` seconds (0 = before every read,
which is what the deterministic tests use).

**Result cache.**  Merged results are cached under
``(normalized text, generation token)`` where the token is the sorted
tuple of every target backend's last-known data generation.  Any
acknowledged mutation or ``REPACK`` on any target shard changes that
backend's generation and thus the token — a repack on one shard can
never serve a stale merged result (the generations are learned from
every response header, including repack and mutation acks).

**Degradation.**  A dead backend answers the affected command with
``BUSY`` (clients already treat that as retry-after-backoff); inserts
are idempotent by gid, so a retried partially-applied insert converges.
One-shard failures never take down queries whose windows miss it.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro import obs
from repro.psql.errors import PsqlError
from repro.psql.planner import merge_shard_plans
from repro.relational.rowcodec import decode_row, encode_row
from repro.server import binproto, protocol
from repro.server.cache import QueryCache
from repro.server.protocol import Response
from repro.cluster.dataset import GID_COLUMN, ClusterDataset
from repro.cluster.partition import ShardMap
from repro.cluster.routing import (ClusterRoutingError, merge_knn,
                                   merge_rows, plan_route, shard_targets)

__all__ = ["BackendDownError", "BackendSpec", "Router", "RouterConfig"]


class BackendDownError(Exception):
    """A backend connection failed; the command was not completed."""


@dataclass(frozen=True)
class BackendSpec:
    """Address and role of one cluster node the router talks to."""

    name: str          #: e.g. "shard0", "shard1-replica0"
    host: str
    port: int
    shard_id: int
    role: str          #: "primary" or "replica"


@dataclass
class RouterConfig:
    """Router parameters (mirrors :class:`~repro.server.server.ServerConfig`
    where the concepts overlap)."""

    host: str = "127.0.0.1"
    port: int = 0                      #: 0 picks an ephemeral port
    cache_size: int = 256              #: 0 disables the merged-result cache
    query_timeout: float = 30.0        #: per-backend roundtrip bound
    #: replicas may serve reads while at most this many commits behind
    replica_lag_threshold: float = 0.0
    #: seconds between replica STATS health refreshes (0 = every read)
    health_interval: float = 0.0
    drain_timeout: float = 5.0
    #: negotiate the binary protocol (``HELLO bin``) on upstream shard
    #: connections; shards that predate it answer ERR and the backend
    #: silently stays on the text protocol.  The router's *client-facing*
    #: side is text-only either way.
    binary_upstream: bool = True


class _Backend:
    """One router-side connection to a shard or replica server.

    The router keeps a single multiplexed connection per backend; a
    per-backend asyncio lock serialises roundtrips on it.  Connection
    failures drop the socket and surface as :class:`BackendDownError`;
    the next command lazily reconnects, so a restarted shard heals
    without router intervention.
    """

    def __init__(self, spec: BackendSpec, binary: bool = True):
        self.spec = spec
        self.lock = asyncio.Lock()
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        #: negotiate the binary protocol when (re)connecting
        self.binary_wanted = binary
        #: True once ``HELLO bin`` was acked on the live connection
        self.binary = False
        #: last data generation seen in any response header from this
        #: backend (-1 until the first response) — the cache-token input.
        self.generation = -1
        #: replicas: commits behind the primary at last health refresh
        self.lag_commits: Optional[float] = None
        self.health_at = float("-inf")
        self.queries = 0
        self.failures = 0

    async def roundtrip(self, command: str, timeout: float) -> Response:
        async with self.lock:
            try:
                if self.writer is None:
                    self.reader, self.writer = await asyncio.wait_for(
                        asyncio.open_connection(self.spec.host,
                                                self.spec.port),
                        timeout)
                    self.binary = False
                    if self.binary_wanted:
                        await self._negotiate_binary(timeout)
                if self.binary:
                    response = await self._binary_roundtrip(command, timeout)
                else:
                    await self._send_line(command, timeout)
                    response = await self._read_text_response(timeout)
            except (OSError, EOFError, asyncio.TimeoutError,
                    protocol.ProtocolError) as exc:
                self.failures += 1
                await self._drop()
                raise BackendDownError(
                    f"backend {self.spec.name}: {exc}") from exc
            self.queries += 1
            if response.generation >= 0:
                self.generation = response.generation
            return response

    async def _negotiate_binary(self, timeout: float) -> None:
        """Offer ``HELLO bin``; an ERR (pre-HELLO shard) keeps text."""
        await self._send_line("HELLO bin", timeout)
        response = await self._read_text_response(timeout)
        if response.ok:
            self.binary = True

    async def _send_line(self, command: str, timeout: float) -> None:
        self.writer.write(command.encode("utf-8") + b"\n")
        await asyncio.wait_for(self.writer.drain(), timeout)

    async def _read_text_response(self, timeout: float) -> Response:
        lines: list[str] = []
        while True:
            raw = await asyncio.wait_for(self.reader.readline(), timeout)
            if not raw:
                raise ConnectionResetError("backend closed")
            line = raw.decode("utf-8").rstrip("\n")
            lines.append(line)
            if line == protocol.END:
                break
        return protocol.parse_response(lines)

    async def _binary_roundtrip(self, command: str,
                                timeout: float) -> Response:
        # OP_COMMAND carries the full text verb line, so every router
        # upstream verb (QUERY/KNN/INSERT/...) works without per-verb
        # binary encodings.
        self.writer.write(binproto.encode_command(command))
        await asyncio.wait_for(self.writer.drain(), timeout)
        prefix = await asyncio.wait_for(self.reader.readexactly(4), timeout)
        length = int.from_bytes(prefix, "little")
        if length == 0 or length > binproto.MAX_FRAME:
            raise protocol.ProtocolError(
                f"implausible frame length {length} from backend")
        body = await asyncio.wait_for(self.reader.readexactly(length),
                                      timeout)
        return binproto.parse_response_body(body)

    async def _drop(self) -> None:
        if self.writer is not None:
            self.writer.close()
        self.reader = None
        self.writer = None
        self.binary = False


class Router:
    """The scatter-gather tier: one protocol endpoint, many shards.

    Args:
        config: router parameters.
        dataset: the cluster dataset (for schemas, pictorial columns and
            the gid counter — the router never touches row storage).
        shardmap: the key-range partitioning all nodes agree on.
        backends: every cluster node, primaries and replicas.
    """

    def __init__(self, config: RouterConfig, dataset: ClusterDataset,
                 shardmap: ShardMap, backends: Sequence[BackendSpec]):
        self.config = config
        self.dataset = dataset
        self.shardmap = shardmap
        self.cache = QueryCache(capacity=config.cache_size)
        self.registry = obs.Registry()
        self.next_gid = dataset.next_gid
        self._primaries: dict[int, _Backend] = {}
        self._replicas: dict[int, list[_Backend]] = {}
        self._backends: list[_Backend] = []
        for spec in backends:
            backend = _Backend(spec, binary=config.binary_upstream)
            self._backends.append(backend)
            if spec.role == "primary":
                if spec.shard_id in self._primaries:
                    raise ValueError(
                        f"two primaries for shard {spec.shard_id}")
                self._primaries[spec.shard_id] = backend
            elif spec.role == "replica":
                self._replicas.setdefault(spec.shard_id, []).append(backend)
            else:
                raise ValueError(f"unknown backend role {spec.role!r}")
        for sid in range(shardmap.nshards):
            if sid not in self._primaries:
                raise ValueError(f"no primary for shard {sid}")
        self._rr: dict[int, int] = {sid: 0 for sid in self._primaries}
        self._client_writers: set[asyncio.StreamWriter] = set()
        self.port: Optional[int] = None
        self._asyncio_server: Optional[asyncio.base_events.Server] = None
        self._started_at = time.monotonic()
        # Background-thread plumbing, same shape as PsqlServer's.
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_ready = threading.Event()
        self._thread_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._started_at = time.monotonic()
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        self.port = self._asyncio_server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        await self.start()
        assert self._asyncio_server is not None
        try:
            await self._asyncio_server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    async def stop(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        for writer in list(self._client_writers):
            writer.close()
        # Let the connection handlers observe EOF and exit before the
        # loop tears down (avoids cancel noise from blocked readlines).
        await asyncio.sleep(0)
        for backend in self._backends:
            await backend._drop()

    def start_background(self, timeout: float = 30.0) -> tuple[str, int]:
        """Run the router's event loop on a daemon thread; returns
        ``(host, port)`` once bound (see
        :meth:`repro.server.server.PsqlServer.start_background`)."""
        if self._thread is not None:
            raise RuntimeError("router already running in background")
        self._thread = threading.Thread(target=self._thread_main,
                                        name="cluster-router", daemon=True)
        self._thread.start()
        if not self._thread_ready.wait(timeout):
            raise RuntimeError("router failed to start within timeout")
        if self._thread_error is not None:
            raise RuntimeError("router failed to start") \
                from self._thread_error
        assert self.port is not None
        return self.config.host, self.port

    def stop_background(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop_requested is not None:
            loop, stop = self._loop, self._stop_requested
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass
        self._thread.join(timeout)
        self._thread = None

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve_until_stopped())
        except BaseException as exc:  # noqa: BLE001 - surfaced to starter
            self._thread_error = exc
            self._thread_ready.set()

    async def _serve_until_stopped(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        try:
            await self.start()
        except BaseException as exc:  # noqa: BLE001
            self._thread_error = exc
            self._thread_ready.set()
            return
        self._thread_ready.set()
        await self._stop_requested.wait()
        await self.stop()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.registry.bump("router.sessions.opened")
        self._client_writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                verb, _, rest = text.partition(" ")
                verb = verb.upper()
                if verb == "QUIT":
                    await self._write(writer, [protocol.BYE, protocol.END])
                    break
                await self._dispatch(writer, verb, rest)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._client_writers.discard(writer)
            self.registry.bump("router.sessions.closed")
            writer.close()

    async def _dispatch(self, writer: asyncio.StreamWriter, verb: str,
                        rest: str) -> None:
        if verb == "QUERY":
            await self._handle_query(writer, rest)
        elif verb == "EXPLAIN":
            await self._handle_query(writer, "explain " + rest)
        elif verb == "KNN":
            await self._handle_knn(writer, rest)
        elif verb == "INSERT":
            await self._handle_insert(writer, rest)
        elif verb == "DELETE":
            await self._handle_delete(writer, rest)
        elif verb == "REPACK":
            await self._handle_repack(writer, rest)
        elif verb == "MAINTAIN":
            await self._handle_maintain(writer, rest)
        elif verb == "ADVISE":
            await self._handle_advise(writer, rest)
        elif verb == "HEALTH":
            await self._handle_health(writer)
        elif verb in ("STATS", "METRICS"):
            await self._handle_stats(writer)
        elif verb == "PING":
            await self._write(writer, [protocol.PONG, protocol.END])
        else:
            await self._error(
                writer, "ProtocolError",
                f"unknown command {verb!r} (try QUERY/EXPLAIN/KNN/INSERT/"
                f"DELETE/REPACK/MAINTAIN/ADVISE/HEALTH/STATS/PING/QUIT)")

    # -- read routing --------------------------------------------------------

    async def _read_backend(self, shard_id: int) -> _Backend:
        """The backend that should serve the next read for *shard_id*.

        Rotates over the primary and every replica within the lag
        threshold, so cached reads spread across the replica set while
        stale replicas silently drop out of rotation.
        """
        primary = self._primaries[shard_id]
        pool = [primary]
        for replica in self._replicas.get(shard_id, ()):
            await self._refresh_health(replica)
            if (replica.lag_commits is not None
                    and replica.lag_commits
                    <= self.config.replica_lag_threshold):
                pool.append(replica)
        choice = pool[self._rr[shard_id] % len(pool)]
        self._rr[shard_id] += 1
        if choice.spec.role == "replica":
            self.registry.bump("router.reads.replica")
        else:
            self.registry.bump("router.reads.primary")
        return choice

    async def _refresh_health(self, replica: _Backend) -> None:
        now = time.monotonic()
        if now - replica.health_at < self.config.health_interval:
            return
        try:
            response = await replica.roundtrip(
                "STATS", self.config.query_timeout)
        except BackendDownError:
            replica.lag_commits = None      # down = never eligible
            replica.health_at = now
            return
        replica.lag_commits = response.stats.get(
            "cluster.replica.commits_behind")
        generation = response.stats.get("server.generation")
        if generation is not None:
            replica.generation = int(generation)
        replica.health_at = now

    def _gen_token(self, targets: Sequence[int]) -> tuple:
        """The cache-key token: every target backend's last generation.

        Includes primaries *and* replicas of every target shard, so a
        cached merged result stops being addressable as soon as any
        node that could have contributed to — or could now serve — the
        query has changed data (or been repacked).
        """
        parts = []
        for sid in sorted(targets):
            parts.append((self._primaries[sid].spec.name,
                          self._primaries[sid].generation))
            for replica in self._replicas.get(sid, ()):
                parts.append((replica.spec.name, replica.generation))
        return tuple(parts)

    # -- QUERY / EXPLAIN -----------------------------------------------------

    async def _handle_query(self, writer: asyncio.StreamWriter,
                            text: str) -> None:
        self.registry.bump("router.queries")
        try:
            plan = plan_route(text)
        except ClusterRoutingError as exc:
            self.registry.bump("router.rejected")
            await self._error(writer, "ClusterRoutingError", str(exc))
            return
        except PsqlError as exc:
            await self._error(writer, type(exc).__name__, str(exc))
            return
        targets = shard_targets(plan, self.shardmap)
        token = self._gen_token(targets)
        cached = self.cache.get(plan.normalized, token)
        if cached is not None:
            self.registry.bump("router.queries.cached")
            await self._write(
                writer,
                [f"{protocol.OK} cached 0 {cached.nrows}", *cached.payload])
            return
        backends = [await self._read_backend(sid) for sid in targets]
        responses = await asyncio.gather(
            *(b.roundtrip(f"QUERY {plan.rewritten}",
                          self.config.query_timeout) for b in backends),
            return_exceptions=True)
        if not await self._scatter_ok(writer, backends, responses):
            return
        if plan.explain:
            labels = [f"shard {b.spec.shard_id} ({b.spec.name})"
                      for b in backends]
            lines = merge_shard_plans(
                labels, [[row[0] for row in r.rows] for r in responses])
            columns: tuple[str, ...] = ("plan",)
            rows: list[tuple] = [(line,) for line in lines]
        else:
            columns, rows = merge_rows([r.columns for r in responses],
                                       [r.rows for r in responses],
                                       plan.ngid)
        payload = self._encode_string_rows(columns, rows)
        self.cache.put(plan.normalized, token, payload, len(rows))
        self.registry.bump("router.queries.executed")
        self.registry.bump("router.rows_returned", len(rows))
        await self._write(
            writer, [f"{protocol.OK} fresh 0 {len(rows)}", *payload])

    @staticmethod
    def _encode_string_rows(columns: Sequence[str],
                            rows: Sequence[tuple]) -> list[str]:
        # Backend rows arrive as already-formatted strings; re-framing
        # them (instead of protocol.encode_result, which would repr()
        # strings) keeps router output byte-compatible with a single
        # server's rendering of the same rows.
        lines = [protocol.COLS + " "
                 + "\t".join(protocol.escape(c) for c in columns)]
        for row in rows:
            lines.append(protocol.ROW + " "
                         + "\t".join(protocol.escape(str(v)) for v in row))
        lines.append(protocol.END)
        return lines

    async def _scatter_ok(self, writer: asyncio.StreamWriter,
                          backends: Sequence[_Backend],
                          responses: Sequence) -> bool:
        """Shared failure handling for scattered commands.

        Returns True when every backend answered OK; otherwise writes
        the degraded response (BUSY for dead/overloaded backends,
        TIMEOUT/ERR propagated from the first failing shard) and
        returns False.
        """
        for backend, response in zip(backends, responses):
            if isinstance(response, BackendDownError):
                self.registry.bump("router.backend_down")
                await self._write(
                    writer,
                    [f"{protocol.BUSY} " + protocol.escape(
                        f"{backend.spec.name} unavailable ({response}); "
                        f"retry later"),
                     protocol.END])
                return False
            if isinstance(response, BaseException):
                raise response
        for response in responses:
            if response.status == "busy":
                self.registry.bump("router.backend_busy")
                await self._write(
                    writer,
                    [f"{protocol.BUSY} " + protocol.escape(
                        response.error_message or "shard busy"),
                     protocol.END])
                return False
            if response.status == "timeout":
                await self._write(
                    writer,
                    [f"{protocol.TIMEOUT} " + protocol.escape(
                        response.error_message or "shard timeout"),
                     protocol.END])
                return False
            if response.status == "error":
                await self._error(writer, response.error_kind or "Error",
                                  response.error_message)
                return False
        return True

    # -- KNN -----------------------------------------------------------------

    async def _handle_knn(self, writer: asyncio.StreamWriter,
                          rest: str) -> None:
        self.registry.bump("router.knn")
        normalized = "knn " + " ".join(rest.split())
        targets = self.shardmap.all_shards()
        token = self._gen_token(targets)
        cached = self.cache.get(normalized, token)
        if cached is not None:
            self.registry.bump("router.queries.cached")
            await self._write(
                writer,
                [f"{protocol.OK} cached 0 {cached.nrows}", *cached.payload])
            return
        parts = rest.split()
        if len(parts) not in (5, 6):
            await self._error(
                writer, "ProtocolError",
                "usage: KNN <picture> <relation> <x> <y> <k> [column]")
            return
        try:
            k = int(parts[4])
        except ValueError:
            await self._error(writer, "ProtocolError",
                              f"bad k {parts[4]!r}")
            return
        backends = [await self._read_backend(sid) for sid in targets]
        responses = await asyncio.gather(
            *(b.roundtrip(f"KNN {' '.join(parts)}",
                          self.config.query_timeout) for b in backends),
            return_exceptions=True)
        if not await self._scatter_ok(writer, backends, responses):
            return
        per_shard = [[(float(d), int(g)) for d, g in r.rows]
                     for r in responses]
        merged = merge_knn(per_shard, k)
        rows = [(protocol.format_value(float(d)), str(g))
                for d, g in merged]
        payload = self._encode_string_rows(("distance", "gid"), rows)
        self.cache.put(normalized, token, payload, len(rows))
        self.registry.bump("router.rows_returned", len(rows))
        await self._write(
            writer, [f"{protocol.OK} fresh 0 {len(rows)}", *payload])

    # -- mutations -----------------------------------------------------------

    async def _handle_insert(self, writer: asyncio.StreamWriter,
                             rest: str) -> None:
        parts = rest.split()
        if len(parts) != 2:
            await self._error(writer, "ProtocolError",
                              "usage: INSERT <relation> <hexrow>")
            return
        relation_name, hexrow = parts
        try:
            relation = self.dataset.relation(relation_name)
        except KeyError as exc:
            await self._error(writer, "KeyError", str(exc).strip("'\""))
            return
        try:
            row = decode_row(bytes.fromhex(hexrow))
        except ValueError as exc:
            await self._error(writer, "ProtocolError",
                              f"bad row payload: {exc}")
            return
        if GID_COLUMN in row:
            gid = int(row[GID_COLUMN])     # client retry with a known gid
            self.next_gid = max(self.next_gid, gid + 1)
        else:
            gid = self.next_gid
            self.next_gid += 1
            row = {GID_COLUMN: gid, **row}
        targets = self._placement(relation, row)
        self.registry.bump("router.inserts")
        backends = [self._primaries[sid] for sid in targets]
        command = f"INSERT {relation_name} {encode_row(row).hex()}"
        responses = await asyncio.gather(
            *(b.roundtrip(command, self.config.query_timeout)
              for b in backends),
            return_exceptions=True)
        for backend, response in zip(backends, responses):
            if isinstance(response, BackendDownError):
                self.registry.bump("router.backend_down")
                await self._write(
                    writer,
                    [f"{protocol.BUSY} " + protocol.escape(
                        f"{backend.spec.name} unavailable; insert may be "
                        f"partial — retry with gid {gid} (idempotent)"),
                     protocol.END])
                return
            if isinstance(response, BaseException):
                raise response
        for response in responses:
            if not response.ok:
                await self._error(writer, response.error_kind or "Error",
                                  response.error_message)
                return
        await self._write(
            writer, [f"{protocol.OK} insert 0 {gid}", protocol.END])

    def _placement(self, relation, row: dict) -> list[int]:
        """The primary shards that must store *row* (duplicated storage:
        every shard any pictorial value's MBR overlaps)."""
        from repro.relational.catalog import mbr_of_value

        pictorial = [c for c in relation.columns if c.is_pictorial]
        if not pictorial:
            return self.shardmap.all_shards()
        targets: set[int] = set()
        for col in pictorial:
            targets.update(
                self.shardmap.shards_for_rect(mbr_of_value(row[col.name])))
        return sorted(targets)

    async def _handle_delete(self, writer: asyncio.StreamWriter,
                             rest: str) -> None:
        parts = rest.split()
        if len(parts) != 2:
            await self._error(writer, "ProtocolError",
                              "usage: DELETE <relation> <gid>")
            return
        relation_name, gid_text = parts
        try:
            gid = int(gid_text)
        except ValueError:
            await self._error(writer, "ProtocolError",
                              f"bad gid {gid_text!r}")
            return
        self.registry.bump("router.deletes")
        backends = [self._primaries[sid]
                    for sid in self.shardmap.all_shards()]
        responses = await asyncio.gather(
            *(b.roundtrip(f"DELETE {relation_name} {gid}",
                          self.config.query_timeout) for b in backends),
            return_exceptions=True)
        if not await self._scatter_ok(writer, backends, responses):
            return
        deleted = int(any(r.nrows for r in responses))
        await self._write(
            writer, [f"{protocol.OK} delete 0 {deleted}", protocol.END])

    async def _handle_repack(self, writer: asyncio.StreamWriter,
                             rest: str) -> None:
        self.registry.bump("router.repacks")
        backends = [self._primaries[sid]
                    for sid in self.shardmap.all_shards()]
        responses = await asyncio.gather(
            *(b.roundtrip(f"REPACK {rest}", self.config.query_timeout)
              for b in backends),
            return_exceptions=True)
        if not await self._scatter_ok(writer, backends, responses):
            return
        entries = sum(r.nrows for r in responses)
        await self._write(
            writer, [f"{protocol.OK} repack 0 {entries}", protocol.END])

    async def _handle_maintain(self, writer: asyncio.StreamWriter,
                               rest: str) -> None:
        """``MAINTAIN ...`` fan-out over every primary.

        ``on``/``off`` scatter the toggle and ack with the count of
        shards now enabled; ``status`` and ``run`` broadcast like the
        advisor verbs, stitching per-shard report sections.
        """
        self.registry.bump("router.maintains")
        action = rest.strip().lower() or "status"
        if action not in ("on", "off", "status", "run"):
            await self._error(writer, "ProtocolError",
                              "usage: MAINTAIN [on|off|status|run]")
            return
        if action in ("status", "run"):
            await self._broadcast_report(writer, f"MAINTAIN {action}",
                                         "maintain")
            return
        backends = [self._primaries[sid]
                    for sid in self.shardmap.all_shards()]
        responses = await asyncio.gather(
            *(b.roundtrip(f"MAINTAIN {action}", self.config.query_timeout)
              for b in backends),
            return_exceptions=True)
        if not await self._scatter_ok(writer, backends, responses):
            return
        enabled = sum(r.nrows for r in responses)
        await self._write(
            writer, [f"{protocol.OK} maintain 0 {enabled}", protocol.END])

    # -- ADVISE / HEALTH -----------------------------------------------------

    async def _handle_advise(self, writer: asyncio.StreamWriter,
                             rest: str) -> None:
        self.registry.bump("router.advises")
        rest = rest.strip()
        command = f"ADVISE {rest}" if rest else "ADVISE"
        await self._broadcast_report(writer, command, "advise")

    async def _handle_health(self, writer: asyncio.StreamWriter) -> None:
        self.registry.bump("router.healths")
        await self._broadcast_report(writer, "HEALTH", "health")

    async def _broadcast_report(self, writer: asyncio.StreamWriter,
                                command: str, column: str) -> None:
        """Scatter an advisor verb to every primary and stitch the
        per-shard report lines under shard headers.

        Reports are never cached: they summarise live counters and the
        shard's current workload log, so a cached copy would go stale
        without any generation bump to invalidate it.
        """
        backends = [self._primaries[sid]
                    for sid in self.shardmap.all_shards()]
        responses = await asyncio.gather(
            *(b.roundtrip(command, self.config.query_timeout)
              for b in backends),
            return_exceptions=True)
        if not await self._scatter_ok(writer, backends, responses):
            return
        labels = [f"shard {b.spec.shard_id} ({b.spec.name})"
                  for b in backends]
        lines = merge_shard_plans(
            labels, [[row[0] for row in r.rows] for r in responses])
        payload = self._encode_string_rows((column,),
                                           [(line,) for line in lines])
        await self._write(
            writer, [f"{protocol.OK} fresh 0 {len(lines)}", *payload])

    # -- STATS ---------------------------------------------------------------

    async def _handle_stats(self, writer: asyncio.StreamWriter) -> None:
        out: dict[str, float] = {}
        for name, value in self.registry.counters.as_dict().items():
            out[name] = float(value)
        out.update({k.replace("server.cache.", "router.cache."): v
                    for k, v in self.cache.stats().items()})
        uptime = max(time.monotonic() - self._started_at, 1e-9)
        out["router.uptime_seconds"] = uptime
        out["router.qps"] = out.get("router.queries", 0.0) / uptime
        out["router.shards"] = float(self.shardmap.nshards)
        out["router.backends"] = float(len(self._backends))
        out["router.next_gid"] = float(self.next_gid)
        for backend in self._backends:
            prefix = f"backend.{backend.spec.name}."
            out[prefix + "up"] = 0.0
            try:
                response = await backend.roundtrip(
                    "STATS", self.config.query_timeout)
            except BackendDownError:
                continue
            out[prefix + "up"] = 1.0
            for key in ("server.generation", "server.queries",
                        "server.qps", "server.cache.hit_rate",
                        "cluster.shard_id", "cluster.is_primary",
                        "cluster.replica.applied_commits",
                        "cluster.replica.primary_commits",
                        "cluster.replica.commits_behind",
                        "cluster.replica.lag_seconds"):
                if key in response.stats:
                    out[prefix + key] = response.stats[key]
        await self._write(writer, protocol.encode_stats(out))

    # -- frame writing -------------------------------------------------------

    async def _write(self, writer: asyncio.StreamWriter,
                     lines: Sequence[str]) -> None:
        writer.write(("\n".join(lines) + "\n").encode("utf-8"))
        await writer.drain()

    async def _error(self, writer: asyncio.StreamWriter, kind: str,
                     message: str) -> None:
        await self._write(
            writer,
            [f"{protocol.ERR} {kind} {protocol.escape(message)}",
             protocol.END])
