"""Pure routing logic: classify, rewrite, target, merge, dedup.

Everything the router *decides* lives here as plain functions over
plain data, with no sockets or event loops — so the equivalence
property suite can drive thousands of routed queries against in-process
shard databases, and the asyncio :mod:`repro.cluster.router` stays a
thin transport around the very same code paths.

The routed-query pipeline for one PSQL text:

1. :func:`plan_route` normalises and parses it, rejects shapes that
   cannot be routed over duplicated storage (aggregates), extracts the
   window literal when there is one, and rewrites the select list to
   prepend each relation's hidden ``gid`` column — the dedup key;
2. :func:`shard_targets` turns the plan into a shard id list: window
   queries go only to shards the window overlaps, everything else is
   broadcast;
3. each target shard executes the rewritten text;
4. :func:`merge_rows` unions the shard answers, deduplicates on the
   gid prefix (a boundary-spanning rect is stored on, and answered by,
   every shard it overlaps), strips the gid columns again and sorts the
   rows for a deterministic merged order.

kNN rides the same shape through :func:`merge_knn`: every shard answers
its local k best, the union keeps the globally smallest k with
``(distance, gid)`` as the total order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.psql import ast
from repro.psql.functions import FunctionRegistry
from repro.psql.normalize import normalize_query
from repro.psql.parser import parse_statement
from repro.cluster.dataset import GID_COLUMN
from repro.cluster.partition import ShardMap

__all__ = ["ClusterRoutingError", "RoutePlan", "execute_local", "merge_knn",
           "merge_rows", "plan_route", "shard_targets"]

#: Aggregate names the router must refuse: an aggregate folded over
#: duplicated, partitioned rows is not the aggregate over the logical
#: relation, and partial aggregation is out of scope for this tier.
_AGGREGATES = FunctionRegistry()


class ClusterRoutingError(Exception):
    """The query is valid PSQL but not routable over sharded storage."""


@dataclass(frozen=True)
class RoutePlan:
    """The routing decision for one query text."""

    normalized: str              #: canonical client text — the cache key
    rewritten: str               #: text actually sent to shards
    relations: tuple[str, ...]
    window: Optional[Rect]       #: targeting window; None = broadcast
    ngid: int                    #: gid columns prepended to each row
    explain: bool = False


def plan_route(text: str) -> RoutePlan:
    """Classify and rewrite one query for scatter-gather execution.

    Raises:
        PsqlError: when the text does not lex/parse (exactly what a
            single server would raise — routing never outlives parsing).
        ClusterRoutingError: for aggregate select lists.
    """
    normalized = normalize_query(text)
    statement = parse_statement(normalized)
    explain = isinstance(statement, ast.Explain)
    query = statement.query if explain else statement
    for item in query.select:
        if (isinstance(item, ast.FunctionCall)
                and _AGGREGATES.is_aggregate(item.name)):
            raise ClusterRoutingError(
                f"aggregate {item.name}() cannot be routed: shards hold "
                f"overlapping row subsets, so a merged aggregate would "
                f"double-count boundary-spanning objects; run aggregates "
                f"against a single server")
    window = _targeting_window(query)
    if explain:
        # Plans are merged per shard with no dedup, so the original
        # text travels unchanged (each shard EXPLAINs what it would
        # actually run for its slice).
        return RoutePlan(normalized=normalized, rewritten=normalized,
                         relations=query.relations, window=window,
                         ngid=0, explain=True)
    return RoutePlan(normalized=normalized,
                     rewritten=_rewrite_with_gids(normalized,
                                                  query.relations),
                     relations=query.relations, window=window,
                     ngid=len(query.relations))


def _targeting_window(query: ast.Query) -> Optional[Rect]:
    """The window to route by, when routing can be narrowed at all.

    Only a single-relation query with a window *literal* in its
    at-clause is narrowable: the qualifying objects must intersect the
    window, so only shards overlapping it can contribute.  That holds
    for every spatial operator except ``disjoined`` — which qualifies
    objects *away* from the window, so it broadcasts.  A join is
    always broadcast — its second relation's rows are not constrained
    by the window — and subquery/named areas are opaque to the router.
    """
    if len(query.relations) != 1 or query.at is None:
        return None
    if query.at.op == "disjoined":
        return None
    for side in (query.at.left, query.at.right):
        if isinstance(side, ast.WindowLiteral):
            return Rect.from_center(Point(side.cx, side.cy),
                                    side.dx, side.dy)
    return None


def _rewrite_with_gids(normalized: str,
                       relations: tuple[str, ...]) -> str:
    """Prepend the per-relation gid columns to the select list."""
    prefix = "select "
    assert normalized.startswith(prefix), normalized
    if len(relations) == 1:
        gids = GID_COLUMN
    else:
        gids = " , ".join(f"{rel}.{GID_COLUMN}" for rel in relations)
    return f"select {gids} , " + normalized[len(prefix):]


def shard_targets(plan: RoutePlan, shardmap: ShardMap) -> list[int]:
    """The shard ids this plan must be executed on."""
    if plan.window is None:
        return shardmap.all_shards()
    return shardmap.shards_for_rect(plan.window)


# -- merging -------------------------------------------------------------------


def merge_rows(columns_per_shard: Sequence[Sequence[str]],
               rows_per_shard: Sequence[Iterable[tuple]],
               ngid: int) -> tuple[tuple[str, ...], list[tuple]]:
    """Union shard answers, dedup on the gid prefix, strip it, sort.

    Works on both wire rows (tuples of strings) and in-process rows
    (tuples of domain values): the gid prefix is compared verbatim, and
    the surviving suffix rows are sorted for a deterministic merged
    order regardless of shard arrival order.
    """
    columns: tuple[str, ...] = ()
    for cols in columns_per_shard:
        if cols:
            columns = tuple(cols[ngid:])
            break
    seen: dict[tuple, tuple] = {}
    for rows in rows_per_shard:
        for row in rows:
            key = tuple(row[:ngid])
            if key not in seen:
                seen[key] = tuple(row[ngid:])
    merged = sorted(seen.values(), key=_row_sort_key)
    return columns, merged


def _row_sort_key(row: tuple) -> tuple:
    # Mixed value types within a column never happen for one query, but
    # stringifying keeps the sort total even for exotic domain values.
    return tuple(str(v) for v in row)


def merge_knn(per_shard: Sequence[Iterable[tuple[float, Any]]],
              k: int) -> list[tuple[float, Any]]:
    """The global k nearest from per-shard ``(distance, gid)`` answers.

    A boundary-spanning object can be answered by several shards with
    the same distance; dedup keeps one.  ``(distance, gid)`` is the
    total order on both sides of the equivalence tests, so merged
    results are deterministic even under distance ties.
    """
    best: dict[Any, float] = {}
    for rows in per_shard:
        for dist, gid in rows:
            if gid not in best or dist < best[gid]:
                best[gid] = dist
    ranked = sorted(((d, g) for g, d in best.items()))
    return ranked[:k]


# -- in-process reference execution -------------------------------------------


def execute_local(text: str, shard_sessions, shardmap: ShardMap,
                  ) -> tuple[tuple[str, ...], list[tuple]]:
    """Route one query across in-process shard sessions and merge.

    *shard_sessions* is a sequence of
    :class:`~repro.psql.executor.Session`, one per shard id.  This is
    the reference implementation the property suite checks against a
    single-server oracle; the socket router performs the same steps
    over the wire.
    """
    plan = plan_route(text)
    targets = shard_targets(plan, shardmap)
    results = [shard_sessions[sid].execute(plan.rewritten)
               for sid in targets]
    return merge_rows([r.columns for r in results],
                      [r.rows for r in results], plan.ngid)
