"""CLI entry points for cluster nodes: ``python -m repro.cluster``.

Three roles, each printing ``PORT <n>`` on stdout once bound (the
handshake :class:`~repro.cluster.launcher.ProcessCluster` waits for)::

    python -m repro.cluster shard   --shard-id 0 --nshards 2 \
        --data-dir /tmp/c/shard0
    python -m repro.cluster replica --shard-id 0 --nshards 2 \
        --primary-data-dir /tmp/c/shard0 --replica-dir /tmp/c/r0 \
        --poll-interval 0.2
    python -m repro.cluster router  --nshards 2 \
        --backend shard0:127.0.0.1:40001:0:primary \
        --backend shard1:127.0.0.1:40002:1:primary

Every node rebuilds the same demo dataset from ``--scale``/``--seed``
(the dataset is deterministic, so independently started processes agree
on schemas, gids and shard ranges).  Failpoints arm from the
``REPRO_FAILPOINTS`` environment variable exactly as for the single
server — that is how the cluster crash matrix reaches
``cluster.shard.commit`` and ``cluster.replica.apply`` inside children.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys

from repro.server.server import ServerConfig
from repro.cluster.dataset import build_database
from repro.cluster.demo import demo_dataset
from repro.cluster.partition import ShardMap
from repro.cluster.replica import LogShipper
from repro.cluster.router import BackendSpec, Router, RouterConfig
from repro.cluster.shardserver import ShardServer


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--nshards", type=int, required=True)
    parser.add_argument("--order", type=int, default=5,
                        help="routing grid Hilbert order")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--cache-size", type=int, default=256)


def _parse_backend(text: str) -> BackendSpec:
    try:
        name, host, port, shard_id, role = text.split(":")
        return BackendSpec(name, host, int(port), int(shard_id), role)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"backend spec must be name:host:port:shard_id:role, "
            f"got {text!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="run one node of a sharded PSQL cluster")
    sub = parser.add_subparsers(dest="role", required=True)

    shard = sub.add_parser("shard", help="a primary shard server")
    _common(shard)
    shard.add_argument("--shard-id", type=int, required=True)
    shard.add_argument("--data-dir", required=True)

    replica = sub.add_parser("replica", help="a log-shipped read replica")
    _common(replica)
    replica.add_argument("--shard-id", type=int, required=True)
    replica.add_argument("--primary-data-dir", required=True)
    replica.add_argument("--replica-dir", required=True)
    replica.add_argument("--poll-interval", type=float, default=0.2)

    router = sub.add_parser("router", help="the scatter-gather router")
    _common(router)
    router.add_argument("--backend", action="append", default=[],
                        type=_parse_backend, dest="backends",
                        help="name:host:port:shard_id:role (repeatable)")
    router.add_argument("--lag-threshold", type=float, default=0.0)
    router.add_argument("--health-interval", type=float, default=0.0)
    return parser


async def _serve(server) -> None:
    await server.start()
    print(f"PORT {server.port}", flush=True)
    assert server._asyncio_server is not None
    await server._asyncio_server.serve_forever()


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    dataset = demo_dataset(scale=args.scale, seed=args.seed)
    shardmap = ShardMap(dataset.universe, args.nshards, order=args.order)
    config = ServerConfig(host=args.host, port=args.port,
                          workers=args.workers,
                          cache_size=args.cache_size)
    if args.role == "shard":
        os.makedirs(args.data_dir, exist_ok=True)
        db = build_database(dataset, shardmap, args.shard_id,
                            data_dir=args.data_dir)
        node = ShardServer(config, db=db, role="primary",
                           shard_id=args.shard_id)
    elif args.role == "replica":
        shipper = LogShipper(dataset, args.primary_data_dir,
                             args.replica_dir)
        node = ShardServer(config, role="replica",
                           shard_id=args.shard_id, shipper=shipper,
                           poll_interval=args.poll_interval)
    else:
        node = Router(
            RouterConfig(host=args.host, port=args.port,
                         cache_size=args.cache_size,
                         replica_lag_threshold=args.lag_threshold,
                         health_interval=args.health_interval),
            dataset, shardmap, args.backends)
    try:
        asyncio.run(_serve(node))
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
