"""Deterministic routed-query workloads over the demo dataset.

Shared by the cluster smoke check, the socket equivalence tests and the
scaling benchmark: one seeded RNG, one list of PSQL texts that exercise
every routing shape — narrow windows (single-shard), wide and
boundary-spanning windows (multi-shard), every spatial operator
including the broadcast-only ``disjoined``, where-clauses, and
juxtaposition joins.
"""

from __future__ import annotations

import random

from repro.geometry.rect import Rect

__all__ = ["random_queries", "random_window"]


def random_window(rng: random.Random, universe: Rect,
                  spanning: bool = False) -> tuple[float, float,
                                                   float, float]:
    """A ``(cx, dx, cy, dy)`` window inside *universe*.

    With ``spanning=True`` the window is centred near the middle of the
    universe with a large extent — overwhelmingly likely to straddle a
    shard boundary, which is the case the dedup logic exists for.
    """
    w, h = universe.x2 - universe.x1, universe.y2 - universe.y1
    if spanning:
        cx = universe.x1 + w * rng.uniform(0.35, 0.65)
        cy = universe.y1 + h * rng.uniform(0.35, 0.65)
        dx = w * rng.uniform(0.25, 0.45)
        dy = h * rng.uniform(0.25, 0.45)
    else:
        cx = universe.x1 + w * rng.random()
        cy = universe.y1 + h * rng.random()
        dx = w * rng.uniform(0.02, 0.15)
        dy = h * rng.uniform(0.02, 0.15)
    return (round(cx, 1), round(dx, 1), round(cy, 1), round(dy, 1))


def random_queries(rng: random.Random, universe: Rect,
                   n: int) -> list[str]:
    """*n* deterministic PSQL texts covering the routed query shapes."""
    singles = [
        ("select city from cities on us-map at loc {op} {win}",
         ("covered-by", "overlapping", "intersecting", "disjoined")),
        ("select city , population from cities on us-map at loc {op} "
         "{win} where population > 200000",
         ("covered-by", "intersecting")),
        ("select state from states on us-map at loc {op} {win}",
         ("overlapping", "covered-by", "covering", "intersecting")),
        ("select lake , area from lakes on lake-map at loc {op} {win}",
         ("overlapping", "intersecting", "covered-by")),
        ("select hwy-name , hwy-section from highways on us-map "
         "at loc {op} {win}",
         ("intersecting", "overlapping")),
        ("select zone , hour-diff from time-zones on time-zone-map "
         "at loc {op} {win}",
         ("overlapping", "covering", "intersecting")),
    ]
    joins = [
        "select city , zone from cities , time-zones "
        "on us-map , time-zone-map at cities.loc covered-by "
        "time-zones.loc",
        "select city , population-density from cities , states "
        "on us-map , us-map at cities.loc covered-by states.loc "
        "where population > 100000",
    ]
    out: list[str] = []
    for i in range(n):
        roll = rng.random()
        if roll < 0.12:
            out.append(rng.choice(joins))
            continue
        template, ops = singles[rng.randrange(len(singles))]
        cx, dx, cy, dy = random_window(rng, universe,
                                       spanning=(roll < 0.45))
        win = f"{{{cx} +- {dx}, {cy} +- {dy}}}"
        out.append(template.format(op=rng.choice(ops), win=win))
    return out
