"""Exact area of a union of axis-aligned rectangles.

The paper's *overlap* metric (Section 3.1) is "the total area contained
within two or more leaf MBRs".  Computing it exactly requires the area of
the union of all pairwise intersections — a classic sweep-line problem.

The implementation is a plane sweep over x with a coordinate-compressed
interval tree substitute: at each x-slab we merge the active y-intervals
and accumulate ``covered_y * slab_width``.  O(n^2) in the worst case via
the interval merge, which is more than adequate for the paper's node
counts (hundreds of leaves) and has no recursion or numerical drift.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.rect import Rect

# Event kinds for the sweep.
_OPEN = 0
_CLOSE = 1


def union_area(rects: Iterable[Rect]) -> float:
    """Exact area of the union of *rects*.

    Degenerate rectangles (zero width or height) contribute nothing.
    Returns 0.0 for an empty collection.
    """
    boxes = [r for r in rects if r.x2 > r.x1 and r.y2 > r.y1]
    if not boxes:
        return 0.0

    events: list[tuple[float, int, float, float]] = []
    for r in boxes:
        events.append((r.x1, _OPEN, r.y1, r.y2))
        events.append((r.x2, _CLOSE, r.y1, r.y2))
    events.sort(key=lambda e: (e[0], e[1]))

    active: list[tuple[float, float]] = []
    area = 0.0
    prev_x = events[0][0]
    for x, kind, y1, y2 in events:
        if x > prev_x and active:
            area += _covered_length(active) * (x - prev_x)
        prev_x = x
        if kind == _OPEN:
            active.append((y1, y2))
        else:
            active.remove((y1, y2))
    return area


def _covered_length(intervals: Sequence[tuple[float, float]]) -> float:
    """Total length of the union of y-intervals."""
    ordered = sorted(intervals)
    total = 0.0
    cur_lo, cur_hi = ordered[0]
    for lo, hi in ordered[1:]:
        if lo > cur_hi:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        elif hi > cur_hi:
            cur_hi = hi
    total += cur_hi - cur_lo
    return total


def pairwise_intersections(rects: Sequence[Rect]) -> list[Rect]:
    """All non-degenerate pairwise intersection rectangles.

    The union of these is exactly the region covered by two or more input
    rectangles, i.e. the paper's overlap region.
    """
    out: list[Rect] = []
    n = len(rects)
    for i in range(n):
        ri = rects[i]
        for j in range(i + 1, n):
            inter = ri.intersection(rects[j])
            if inter is not None and inter.area() > 0.0:
                out.append(inter)
    return out


def overlap_area(rects: Sequence[Rect]) -> float:
    """Area covered by at least two of the given rectangles.

    This is the paper's *overlap* (Section 3.1) applied to a set of MBRs.
    """
    return union_area(pairwise_intersections(rects))
