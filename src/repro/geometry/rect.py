"""Axis-aligned rectangles — the paper's minimal bounding rectangles (MBRs).

Section 3.1 defines the MBR of a point set as the rectangle bounded by the
extreme x and y coordinates.  Every R-tree entry (leaf and non-leaf) carries
one of these; coverage and overlap (the two quantities PACK minimises) are
sums of rectangle areas.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple, Optional

from repro.geometry.point import Point


class Rect(NamedTuple):
    """A closed axis-aligned rectangle ``[x1, x2] x [y1, y2]``.

    The field layout mirrors the paper's PASCAL ``ENTRY`` record
    (``X1, X2, Y1, Y2``).  Degenerate rectangles (points and segments
    aligned with an axis) are permitted: ``x1 == x2`` or ``y1 == y2``.

    Invariant: ``x1 <= x2`` and ``y1 <= y2``.  Use :meth:`make` to build a
    rectangle from unordered corner coordinates.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    # -- constructors ------------------------------------------------------

    @classmethod
    def make(cls, xa: float, ya: float, xb: float, yb: float) -> "Rect":
        """Build a rectangle from two corners given in any order."""
        return cls(min(xa, xb), min(ya, yb), max(xa, xb), max(ya, yb))

    @classmethod
    def from_point(cls, p: Point) -> "Rect":
        """The degenerate MBR of a single point."""
        return cls(p.x, p.y, p.x, p.y)

    @classmethod
    def from_center(cls, center: Point, half_width: float,
                    half_height: Optional[float] = None) -> "Rect":
        """A rectangle centred at *center*.

        This is the shape of the paper's window specification
        ``{4±4, 11±9}`` — centre coordinates with plus/minus extents.
        """
        if half_height is None:
            half_height = half_width
        if half_width < 0 or half_height < 0:
            raise ValueError("window extents must be non-negative")
        return cls(center.x - half_width, center.y - half_height,
                   center.x + half_width, center.y + half_height)

    # -- basic measures ----------------------------------------------------

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    def area(self) -> float:
        """Area of the rectangle (zero for degenerate rectangles)."""
        return (self.x2 - self.x1) * (self.y2 - self.y1)

    def perimeter(self) -> float:
        """Perimeter (the "margin" of later R-tree literature)."""
        return 2.0 * ((self.x2 - self.x1) + (self.y2 - self.y1))

    def center(self) -> Point:
        """Centre point of the rectangle."""
        return Point((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from the lower-left."""
        return (Point(self.x1, self.y1), Point(self.x2, self.y1),
                Point(self.x2, self.y2), Point(self.x1, self.y2))

    def is_valid(self) -> bool:
        """True when the ordering invariant holds and nothing is NaN."""
        return (self.x1 <= self.x2 and self.y1 <= self.y2
                and not any(math.isnan(v) for v in self))

    # -- relations ---------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True when *p* lies in the closed rectangle."""
        return self.x1 <= p.x <= self.x2 and self.y1 <= p.y <= self.y2

    def contains(self, other: "Rect") -> bool:
        """True when *other* lies entirely within this rectangle.

        This is the paper's WITHIN test used at the leaf level of SEARCH.
        """
        return (self.x1 <= other.x1 and other.x2 <= self.x2
                and self.y1 <= other.y1 and other.y2 <= self.y2)

    def intersects(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least one point.

        This is the paper's INTERSECTS test used to prune the descent.
        Boundary contact counts as intersection.
        """
        return (self.x1 <= other.x2 and other.x1 <= self.x2
                and self.y1 <= other.y2 and other.y1 <= self.y2)

    def overlaps_interior(self, other: "Rect") -> bool:
        """True when the rectangles share interior area (not mere edges).

        The paper's *overlap* metric counts area "contained within two or
        more leaf MBRs"; rectangles that only touch contribute none.
        """
        return (self.x1 < other.x2 and other.x1 < self.x2
                and self.y1 < other.y2 and other.y1 < self.y2)

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The intersection rectangle, or ``None`` when disjoint."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x1 > x2 or y1 > y2:
            return None
        return Rect(x1, y1, x2, y2)

    def intersection_area(self, other: "Rect") -> float:
        """Area of the intersection (zero when disjoint or edge-touching)."""
        w = min(self.x2, other.x2) - max(self.x1, other.x1)
        if w <= 0.0:
            return 0.0
        h = min(self.y2, other.y2) - max(self.y1, other.y1)
        if h <= 0.0:
            return 0.0
        return w * h

    def union(self, other: "Rect") -> "Rect":
        """The MBR enclosing both rectangles."""
        return Rect(min(self.x1, other.x1), min(self.y1, other.y1),
                    max(self.x2, other.x2), max(self.y2, other.y2))

    def enlargement(self, other: "Rect") -> float:
        """Extra area needed to grow this rectangle to cover *other*.

        Guttman's INSERT descends into the child whose MBR needs the least
        enlargement; ties break on smaller area.
        """
        return self.union(other).area() - self.area()

    def min_distance_to(self, other: "Rect") -> float:
        """Minimum Euclidean distance between the two rectangles.

        Zero when they intersect.  Used by the MBR-aware nearest-neighbour
        variants of PACK.
        """
        dx = max(self.x1 - other.x2, other.x1 - self.x2, 0.0)
        dy = max(self.y1 - other.y2, other.y1 - self.y2, 0.0)
        return math.hypot(dx, dy)

    def center_distance_to(self, other: "Rect") -> float:
        """Distance between rectangle centres — the default PACK NN metric."""
        return self.center().distance_to(other.center())

    def translated(self, dx: float, dy: float) -> "Rect":
        """A copy shifted by ``(dx, dy)``."""
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def scaled_about_center(self, factor: float) -> "Rect":
        """A copy scaled by *factor* about its own centre."""
        cx, cy = self.center()
        hw = (self.x2 - self.x1) / 2.0 * factor
        hh = (self.y2 - self.y1) / 2.0 * factor
        return Rect(cx - hw, cy - hh, cx + hw, cy + hh)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.x1:g},{self.y1:g} .. {self.x2:g},{self.y2:g}]"


#: A canonical "nothing" rectangle: unioning with it is the identity.
#: Useful as the seed of MBR accumulations.
EMPTY_RECT = Rect(math.inf, math.inf, -math.inf, -math.inf)


def mbr_of_points(points: Iterable[Point]) -> Rect:
    """The minimal bounding rectangle of a non-empty point collection.

    This is the paper's ``(P1, P2, ..., Pn)`` notation from Section 3.1.

    Raises:
        ValueError: if *points* is empty.
    """
    x1 = y1 = math.inf
    x2 = y2 = -math.inf
    n = 0
    for p in points:
        if p.x < x1:
            x1 = p.x
        if p.x > x2:
            x2 = p.x
        if p.y < y1:
            y1 = p.y
        if p.y > y2:
            y2 = p.y
        n += 1
    if n == 0:
        raise ValueError("MBR of an empty point collection is undefined")
    return Rect(x1, y1, x2, y2)


def mbr_of_rects(rects: Iterable[Rect]) -> Rect:
    """The minimal bounding rectangle of a non-empty rectangle collection.

    Raises:
        ValueError: if *rects* is empty.
    """
    acc = EMPTY_RECT
    n = 0
    for r in rects:
        acc = acc.union(r)
        n += 1
    if n == 0:
        raise ValueError("MBR of an empty rectangle collection is undefined")
    return acc
