"""Simple polygonal regions — PSQL's "region" pictorial domain.

States, lakes and time-zones in the paper's example database are regions.
The R-tree only ever sees a region's MBR (leaf entries store MBRs plus a
tuple identifier); the full polygon is kept so the PSQL layer can evaluate
exact spatial operators (``area``, point containment) when the MBR test is
not decisive.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect, mbr_of_points


class Region:
    """A simple (non-self-intersecting) polygon given by its vertices.

    Vertices may wind either way; signed quantities are normalised.
    The polygon is implicitly closed (last vertex connects to the first).
    """

    __slots__ = ("_vertices", "_mbr")

    def __init__(self, vertices: Sequence[Point]):
        if len(vertices) < 3:
            raise ValueError(
                f"a region needs at least 3 vertices, got {len(vertices)}")
        self._vertices: tuple[Point, ...] = tuple(
            Point(float(p[0]), float(p[1])) for p in vertices)
        self._mbr = mbr_of_points(self._vertices)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_rect(cls, rect: Rect) -> "Region":
        """A rectangular region (many of the paper's figures use these)."""
        return cls(rect.corners())

    # -- accessors ---------------------------------------------------------

    @property
    def vertices(self) -> tuple[Point, ...]:
        return self._vertices

    def mbr(self) -> Rect:
        """Minimal bounding rectangle of the region."""
        return self._mbr

    # -- measures ----------------------------------------------------------

    def area(self) -> float:
        """Polygon area via the shoelace formula.

        This backs PSQL's ``area`` pictorial function (Section 2.1).
        """
        acc = 0.0
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            acc += a.x * b.y - b.x * a.y
        return abs(acc) / 2.0

    def centroid(self) -> Point:
        """Area-weighted centroid (falls back to vertex mean if degenerate)."""
        acc_x = acc_y = 0.0
        acc_a = 0.0
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            cross = a.x * b.y - b.x * a.y
            acc_a += cross
            acc_x += (a.x + b.x) * cross
            acc_y += (a.y + b.y) * cross
        if acc_a == 0.0:
            xs = sum(v.x for v in verts) / n
            ys = sum(v.y for v in verts) / n
            return Point(xs, ys)
        return Point(acc_x / (3.0 * acc_a), acc_y / (3.0 * acc_a))

    # -- predicates ---------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """Point-in-polygon via the even-odd ray-cast rule.

        Points exactly on an edge count as contained — consistent with the
        closed-rectangle semantics used elsewhere.
        """
        verts = self._vertices
        n = len(verts)
        inside = False
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            if _on_edge(a, b, p):
                return True
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def contains_rect(self, rect: Rect) -> bool:
        """Conservative containment: all four corners inside the polygon.

        Exact for convex regions; a safe approximation for the synthetic
        concave regions in the workload generator.
        """
        return all(self.contains_point(c) for c in rect.corners())

    def __len__(self) -> int:
        return len(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Region({len(self._vertices)} vertices, mbr={self._mbr})"


def _on_edge(a: Point, b: Point, p: Point, eps: float = 1e-12) -> bool:
    """True when *p* lies on the closed segment ``a -> b``."""
    cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
    if abs(cross) > eps * max(1.0, abs(b.x - a.x) + abs(b.y - a.y)):
        return False
    return (min(a.x, b.x) - eps <= p.x <= max(a.x, b.x) + eps
            and min(a.y, b.y) - eps <= p.y <= max(a.y, b.y) + eps)


def regions_mbr(regions: Iterable[Region]) -> Rect:
    """MBR of a non-empty collection of regions."""
    rects = [r.mbr() for r in regions]
    if not rects:
        raise ValueError("MBR of an empty region collection is undefined")
    acc = rects[0]
    for r in rects[1:]:
        acc = acc.union(r)
    return acc
