"""Immutable 2-D points.

Points are the simplest pictorial domain in the paper: "the spatial objects
cities are viewed as points" (Section 3).  They are also the data objects of
the Table 1 experiment, drawn uniformly from ``[0, 1000] x [0, 1000]``.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple


class Point(NamedTuple):
    """A point in the plane.

    Implemented as a :class:`~typing.NamedTuple` so points are hashable,
    orderable (lexicographically by ``(x, y)``) and allocation-cheap —
    the PACK experiments create hundreds of thousands of them.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to *other*."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_squared_to(self, other: "Point") -> float:
        """Squared Euclidean distance — avoids the sqrt in hot NN loops."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x:g}, {self.y:g})"


def euclidean_distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points (module-level convenience)."""
    return a.distance_to(b)


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points.

    Raises:
        ValueError: if *points* is empty.
    """
    xs = 0.0
    ys = 0.0
    n = 0
    for p in points:
        xs += p.x
        ys += p.y
        n += 1
    if n == 0:
        raise ValueError("centroid of an empty point collection is undefined")
    return Point(xs / n, ys / n)
