"""Geometric primitives and predicates underlying the spatial index.

The paper models every spatial object through its *minimal bounding
rectangle* (MBR).  This package provides:

- :class:`~repro.geometry.point.Point` — immutable 2-D point.
- :class:`~repro.geometry.rect.Rect` — axis-aligned rectangle (the MBR of
  the paper, Section 3.1) with area/union/intersection algebra.
- :class:`~repro.geometry.segment.Segment` — line segment ("highway
  sections" in PSQL's data model).
- :class:`~repro.geometry.region.Region` — simple polygon ("states",
  "lakes", "time-zones").
- Spatial predicates named after PSQL's operators (Section 2.2):
  ``covers``, ``covered_by``, ``overlapping``, ``disjoined``.
- Rotation utilities used by Lemma 3.1 / Theorem 3.2.
- A sweep-line union-area routine used by the overlap metric (Section 3.1).
"""

from repro.geometry.point import Point, centroid, euclidean_distance
from repro.geometry.rect import EMPTY_RECT, Rect, mbr_of_points, mbr_of_rects
from repro.geometry.segment import Segment
from repro.geometry.region import Region
from repro.geometry.predicates import (
    covered_by,
    covers,
    disjoined,
    intersects,
    overlapping,
)
from repro.geometry.rotation import (
    distinct_x_rotation,
    rotate_point,
    rotate_points,
)
from repro.geometry.sweep import union_area

__all__ = [
    "EMPTY_RECT",
    "Point",
    "Rect",
    "Region",
    "Segment",
    "centroid",
    "covered_by",
    "covers",
    "disjoined",
    "distinct_x_rotation",
    "euclidean_distance",
    "intersects",
    "mbr_of_points",
    "mbr_of_rects",
    "overlapping",
    "rotate_point",
    "rotate_points",
    "union_area",
]
