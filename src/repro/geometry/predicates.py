"""Spatial comparison predicates named after PSQL's operators.

Section 2.2 of the paper: "an area in the <area-specification> may be
followed by the spatial operators **covering**, **covered-by**,
**overlapping**, **disjoined**".  These are the operator semantics used by
both the query executor and the at-clause evaluation; they all operate on
MBRs, matching the paper's leaf-entry representation.
"""

from __future__ import annotations

from repro.geometry.rect import Rect


def covers(a: Rect, b: Rect) -> bool:
    """``a covering b``: *b* lies entirely within *a* (closed semantics)."""
    return a.contains(b)


def covered_by(a: Rect, b: Rect) -> bool:
    """``a covered-by b``: *a* lies entirely within *b*."""
    return b.contains(a)


def overlapping(a: Rect, b: Rect) -> bool:
    """``a overlapping b``: the rectangles share interior area.

    Mere edge contact does not count as overlap; this matches the paper's
    overlap metric, which measures *area* contained in two or more MBRs.
    """
    return a.overlaps_interior(b)


def disjoined(a: Rect, b: Rect) -> bool:
    """``a disjoined b``: the closed rectangles share no point at all."""
    return not a.intersects(b)


def intersects(a: Rect, b: Rect) -> bool:
    """Closed-rectangle intersection — the R-tree descent test."""
    return a.intersects(b)


#: PSQL operator name -> predicate, as they appear in at-clauses.
OPERATORS = {
    "covering": covers,
    "covered-by": covered_by,
    "overlapping": overlapping,
    "disjoined": disjoined,
    "intersecting": intersects,
}
