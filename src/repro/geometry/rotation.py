"""Rotation machinery for Lemma 3.1 and Theorem 3.2.

Lemma 3.1: for any finite point set S there exists an angle alpha such that
rotating S about the origin by alpha leaves every point with a distinct
x-coordinate.  The proof observes that only finitely many "bad" angles
exist — one per pair of points — so almost every angle works.

:func:`distinct_x_rotation` constructs such an angle deterministically by
enumerating the bad angles and picking a gap between them, rather than
sampling, so the construction is reproducible and testable.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.geometry.point import Point


def rotate_point(p: Point, alpha: float) -> Point:
    """Rotate *p* counter-clockwise about the origin by *alpha* radians."""
    c = math.cos(alpha)
    s = math.sin(alpha)
    return Point(p.x * c - p.y * s, p.x * s + p.y * c)


def rotate_points(points: Iterable[Point], alpha: float) -> list[Point]:
    """Rotate every point counter-clockwise about the origin by *alpha*."""
    c = math.cos(alpha)
    s = math.sin(alpha)
    return [Point(p.x * c - p.y * s, p.x * s + p.y * c) for p in points]


def distinct_x_count(points: Sequence[Point]) -> int:
    """The paper's F(S): number of distinct x-coordinates in *points*."""
    return len({p.x for p in points})


def bad_angles(points: Sequence[Point]) -> list[float]:
    """Angles in ``[0, pi)`` at which some pair of points shares an x-coordinate.

    A pair ``(pi, pj)`` collides under rotation by alpha exactly when the
    rotated difference vector is vertical, i.e. when
    ``(xj - xi) cos(alpha) = (yj - yi) sin(alpha)``.  Solving gives
    ``alpha = atan2(xj - xi, yj - yi)`` modulo pi.  Coincident points are
    skipped — no rotation can separate them.
    """
    angles: set[float] = set()
    n = len(points)
    for i in range(n):
        for j in range(i + 1, n):
            dx = points[j].x - points[i].x
            dy = points[j].y - points[i].y
            if dx == 0.0 and dy == 0.0:
                continue
            alpha = math.atan2(dx, dy) % math.pi
            angles.add(alpha)
    return sorted(angles)


def distinct_x_rotation(points: Sequence[Point]) -> float:
    """A rotation angle giving every point a distinct x-coordinate.

    Deterministic constructive version of Lemma 3.1: compute the finite set
    of bad angles and return the midpoint of the widest gap between
    consecutive ones, which maximises numerical robustness.

    Raises:
        ValueError: if *points* contains duplicate points, which no rotation
            can separate (the degenerate case excluded by the lemma's
            "finite set of points" reading as distinct points).
    """
    distinct = list(dict.fromkeys(points))
    if len(distinct) != len(points):
        raise ValueError("duplicate points can never have distinct x-coordinates")
    if len(points) < 2:
        return 0.0

    bad = bad_angles(points)
    if not bad:
        return 0.0
    # Wrap around the [0, pi) circle of undirected angles and take the
    # midpoint of the widest gap.
    best_angle = 0.0
    best_gap = -1.0
    for i, a in enumerate(bad):
        b = bad[(i + 1) % len(bad)]
        gap = (b - a) % math.pi
        if gap == 0.0:
            gap = math.pi  # single bad angle: the whole rest of the circle
        if gap > best_gap:
            best_gap = gap
            best_angle = (a + gap / 2.0) % math.pi
    return best_angle
