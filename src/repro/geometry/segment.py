"""Line segments — PSQL's "segment" pictorial domain (highway sections)."""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect


class Segment(NamedTuple):
    """A line segment between two endpoints.

    In the paper's data model highways are relations of *segments*
    (``highways(hwy-name, hwy-section, loc)``); each section is indexed in
    the R-tree through its MBR.
    """

    start: Point
    end: Point

    def mbr(self) -> Rect:
        """Minimal bounding rectangle of the segment."""
        return Rect.make(self.start.x, self.start.y, self.end.x, self.end.y)

    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    def midpoint(self) -> Point:
        """Midpoint of the segment."""
        return Point((self.start.x + self.end.x) / 2.0,
                     (self.start.y + self.end.y) / 2.0)

    def reversed(self) -> "Segment":
        """The same segment traversed in the opposite direction."""
        return Segment(self.end, self.start)

    def point_at(self, t: float) -> Point:
        """The point at parameter ``t`` along the segment (0 = start, 1 = end)."""
        return Point(self.start.x + t * (self.end.x - self.start.x),
                     self.start.y + t * (self.end.y - self.start.y))

    def distance_to_point(self, p: Point) -> float:
        """Minimum distance from *p* to any point on the segment."""
        vx = self.end.x - self.start.x
        vy = self.end.y - self.start.y
        wx = p.x - self.start.x
        wy = p.y - self.start.y
        seg_len_sq = vx * vx + vy * vy
        if seg_len_sq == 0.0:
            return p.distance_to(self.start)
        t = max(0.0, min(1.0, (wx * vx + wy * vy) / seg_len_sq))
        proj = Point(self.start.x + t * vx, self.start.y + t * vy)
        return p.distance_to(proj)

    def intersects_segment(self, other: "Segment") -> bool:
        """True when the two closed segments share at least one point."""
        def orient(a: Point, b: Point, c: Point) -> float:
            return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)

        def on_segment(a: Point, b: Point, c: Point) -> bool:
            return (min(a.x, b.x) <= c.x <= max(a.x, b.x)
                    and min(a.y, b.y) <= c.y <= max(a.y, b.y))

        p1, p2 = self.start, self.end
        p3, p4 = other.start, other.end
        d1 = orient(p3, p4, p1)
        d2 = orient(p3, p4, p2)
        d3 = orient(p1, p2, p3)
        d4 = orient(p1, p2, p4)
        if ((d1 > 0) != (d2 > 0) and d1 != 0 and d2 != 0
                and (d3 > 0) != (d4 > 0) and d3 != 0 and d4 != 0):
            return True
        if d1 == 0 and on_segment(p3, p4, p1):
            return True
        if d2 == 0 and on_segment(p3, p4, p2):
            return True
        if d3 == 0 and on_segment(p1, p2, p3):
            return True
        if d4 == 0 and on_segment(p1, p2, p4):
            return True
        return False

    def heading(self) -> float:
        """Direction of travel in radians, measured from the +x axis."""
        return math.atan2(self.end.y - self.start.y, self.end.x - self.start.x)
