"""E3 — Figure 3.7: coverage of x-slab grouping vs proximity grouping.

Both groupings achieve (near-)zero overlap; the figure's point is that
coverage still differs enormously when the data has vertical structure.
"""

import pytest

from repro.experiments.figures import run_fig37_grouping
from repro.geometry import Rect
from repro.rtree.packing import pack


@pytest.fixture(scope="module")
def result(report):
    r = run_fig37_grouping()
    report("fig37_grouping", "\n".join([
        "Figure 3.7 — grouping the same points two ways",
        f"  x-slab grouping coverage (3.7a): {r.slab_coverage:,.0f}",
        f"  NN grouping coverage     (3.7b): {r.nn_coverage:,.0f}",
        f"  improvement: {r.improvement:.2f}x",
    ]))
    return r


def test_nn_grouping_tighter(result):
    assert result.improvement > 2.0


@pytest.fixture(scope="module")
def stacked_items():
    import random
    rng = random.Random(11)
    from repro.geometry import Point
    items = []
    for col in range(4):
        for row in range(2):
            cx, cy = 125 + 250 * col, 250 + 500 * row
            for _ in range(8):
                p = Point(rng.gauss(cx, 10), rng.gauss(cy, 10))
                items.append((Rect.from_point(p), len(items)))
    return items


def test_pack_lowx(benchmark, stacked_items):
    benchmark(pack, stacked_items, 4, "lowx")


def test_pack_nn(benchmark, stacked_items):
    benchmark(pack, stacked_items, 4, "nn")
