"""Cluster scaling: window-query QPS vs. primary shard count.

The scale-out claim behind :mod:`repro.cluster`: sharding the universe
into Hilbert key ranges and scattering window queries only to the
shards they overlap multiplies read throughput with real processes —
each shard is a separate ``python -m repro.cluster`` subprocess with
its own interpreter, tree and cache, so shard parallelism is process
parallelism.

One sweep, written to ``benchmarks/out/cluster_qps.txt``: QPS at 1, 2
and 4 shards for a narrow-window workload (narrow windows are the case
routing helps — most queries touch one shard, so shards serve them
concurrently).  The router's merged-result cache is disabled and every
query text is distinct, so each one is actually scattered and merged.

Smoke knobs: ``REPRO_CLUSTER_BENCH_QUERIES`` (queries per client),
``REPRO_CLUSTER_BENCH_SCALE`` (demo dataset multiplier).  The >= 3x
speedup assertion (4 shards vs. 1) only applies where it can
physically hold — ``os.cpu_count() >= 6`` (4 shard processes + router
+ client); smaller boxes still run and report.
"""

from __future__ import annotations

import os
import random
import tempfile
import threading
import time

from repro.cluster.client import ClusterClient
from repro.cluster.demo import demo_dataset
from repro.cluster.launcher import ProcessCluster
from repro.cluster.workload import random_window

OUT_PATH = os.path.join(os.path.dirname(__file__), "out",
                        "cluster_qps.txt")

QUERIES_PER_CLIENT = int(os.environ.get("REPRO_CLUSTER_BENCH_QUERIES",
                                        "200"))
SCALE = int(os.environ.get("REPRO_CLUSTER_BENCH_SCALE", "20"))
SHARD_COUNTS = (1, 2, 4)
CLIENTS = 4
SPEEDUP_FLOOR = 3.0
MIN_CORES_FOR_ASSERT = 6


def _query_mix(rng: random.Random, universe, n: int) -> list[str]:
    """Distinct narrow-window queries (each must miss every cache)."""
    out = []
    for i in range(n):
        cx, dx, cy, dy = random_window(rng, universe, spanning=False)
        rel, pic = (("cities", "us-map") if i % 3 else ("states", "us-map"))
        col = "city" if rel == "cities" else "state"
        out.append(f"select {col} from {rel} on {pic} at loc "
                   f"intersecting {{{cx} +- {dx}, {cy} +- {dy}}}")
    return out


def _drive(host: str, port: int, universe, clients: int,
           queries_per_client: int, seed: int) -> tuple[float, int]:
    errors: list[str] = []
    completed = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_main(idx: int) -> None:
        rng = random.Random(seed + idx)
        queries = _query_mix(rng, universe, queries_per_client)
        try:
            with ClusterClient(host, port, timeout=120.0) as c:
                barrier.wait()
                for q in queries:
                    r = c.query(q)
                    if r.ok:
                        with lock:
                            completed[0] += 1
                    else:
                        with lock:
                            errors.append(f"{r.status}: "
                                          f"{r.error_message}")
        except Exception as exc:  # noqa: BLE001
            with lock:
                errors.append(f"{type(exc).__name__}: {exc}")
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [threading.Thread(target=client_main, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise AssertionError(f"bench clients failed: {errors[:3]}")
    return elapsed, completed[0]


def _measure(nshards: int, universe) -> float:
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp, \
            ProcessCluster(nshards, tmp, scale=SCALE,
                           router_cache_size=0) as cluster:
        # Warm up connections and shard plan caches off the clock.
        _drive(cluster.router_host, cluster.router_port, universe,
               CLIENTS, 5, seed=999)
        elapsed, completed = _drive(cluster.router_host,
                                    cluster.router_port, universe,
                                    CLIENTS, QUERIES_PER_CLIENT,
                                    seed=1234)
        assert completed == CLIENTS * QUERIES_PER_CLIENT
        return completed / elapsed


def run_bench() -> list[tuple[int, float]]:
    universe = demo_dataset(scale=SCALE).universe
    return [(n, _measure(n, universe)) for n in SHARD_COUNTS]


def write_report(results: list[tuple[int, float]]) -> str:
    cores = os.cpu_count() or 1
    base = results[0][1]
    lines = [
        "Cluster window-query throughput (router cache disabled)",
        f"cores={cores} clients={CLIENTS} "
        f"queries/client={QUERIES_PER_CLIENT} demo-scale={SCALE}",
        "",
    ]
    for n, qps in results:
        lines.append(f"  shards={n:<2d}  qps={qps:8.1f}  "
                     f"speedup={qps / base:4.2f}x")
    report = "\n".join(lines) + "\n"
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        fh.write(report)
    return report


def test_cluster_scaling():
    results = run_bench()
    print()
    print(write_report(results))
    assert all(qps > 0 for _n, qps in results)
    if (os.cpu_count() or 1) >= MIN_CORES_FOR_ASSERT:
        base = results[0][1]
        top = results[-1][1]
        assert top >= SPEEDUP_FLOOR * base, (
            f"{SHARD_COUNTS[-1]} shards only {top / base:.2f}x over 1 "
            f"shard: {results}")


if __name__ == "__main__":
    test_cluster_scaling()
