"""E9/E10/E11 — the PSQL queries of Section 2.2.

Benchmarks direct spatial search, juxtaposition and nested mappings
against the synthetic map, and reports result sizes.
"""

import pytest

from repro.psql import Session
from repro.relational import Column, Database
from repro.workloads import build_us_map

DIRECT_QUERY = """
    select city, state, population, loc
    from   cities
    on     us-map
    at     loc covered-by {500 ± 250, 500 ± 250}
    where  population > 450_000
"""

JUXTAPOSITION_QUERY = """
    select city, zone
    from   cities, time-zones
    on     us-map, time-zone-map
    at     cities.loc covered-by time-zones.loc
"""

NESTED_QUERY = """
    select lake, area, lakes.loc
    from   lakes
    on     lake-map
    at     lakes.loc covered-by
           select states.loc from states on us-map
           at states.loc covered-by {750 ± 250, 500 ± 500}
"""


@pytest.fixture(scope="module")
def session():
    the_map = build_us_map(seed=42, cities_per_state=20, lakes=25)
    db = Database()
    cities = db.create_relation("cities", [
        Column("city", "str"), Column("state", "str"),
        Column("population", "int"), Column("loc", "point")])
    for c in the_map.cities:
        cities.insert({"city": c.name, "state": c.state,
                       "population": c.population, "loc": c.loc})
    states = db.create_relation("states", [
        Column("state", "str"), Column("population-density", "float"),
        Column("loc", "region")])
    for s in the_map.states:
        states.insert({"state": s.name,
                       "population-density": s.population_density,
                       "loc": s.loc})
    zones = db.create_relation("time-zones", [
        Column("zone", "str"), Column("hour-diff", "int"),
        Column("loc", "region")])
    for z in the_map.time_zones:
        zones.insert({"zone": z.zone, "hour-diff": z.hour_diff,
                      "loc": z.loc})
    lakes = db.create_relation("lakes", [
        Column("lake", "str"), Column("area", "float"),
        Column("volume", "float"), Column("loc", "region")])
    for l in the_map.lakes:
        lakes.insert({"lake": l.name, "area": l.area,
                      "volume": l.volume, "loc": l.loc})

    us = db.create_picture("us-map", the_map.universe)
    us.register(cities, "loc")
    us.register(states, "loc")
    db.create_picture("time-zone-map", the_map.universe).register(
        zones, "loc")
    db.create_picture("lake-map", the_map.universe).register(lakes, "loc")
    return Session(db)


@pytest.fixture(scope="module")
def result_sizes(report, session):
    sizes = {
        "direct (E9)": len(session.execute(DIRECT_QUERY)),
        "juxtaposition (E10)": len(session.execute(JUXTAPOSITION_QUERY)),
        "nested (E11)": len(session.execute(NESTED_QUERY)),
    }
    report("psql_queries", "\n".join(
        ["PSQL query results over the synthetic map"]
        + [f"  {name}: {n} rows" for name, n in sizes.items()]))
    return sizes


def test_queries_return_rows(result_sizes):
    assert all(n > 0 for n in result_sizes.values())


def test_direct_spatial_search(benchmark, session):
    result = benchmark(session.execute, DIRECT_QUERY)
    assert len(result) > 0


def test_juxtaposition(benchmark, session):
    result = benchmark(session.execute, JUXTAPOSITION_QUERY)
    assert len(result) > 0


def test_nested_mapping(benchmark, session):
    result = benchmark(session.execute, NESTED_QUERY)
    assert len(result) >= 0


def test_parse_only(benchmark):
    from repro.psql import parse
    q = benchmark(parse, NESTED_QUERY)
    assert q.relations == ("lakes",)
