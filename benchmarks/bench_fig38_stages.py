"""E4 — Figure 3.8: the recursive stages of PACK on a city map.

Writes the per-level group counts (cities -> leaf MBRs -> ... -> root)
and renders the stages to SVG, as the figure does.
"""

import os

import pytest

from repro.experiments.figures import run_fig38_stages
from repro.viz import render_pack_stages
from repro.workloads import TABLE1_UNIVERSE


@pytest.fixture(scope="module")
def stages(report):
    s = run_fig38_stages(n=48)
    lines = ["Figure 3.8 — PACK stages over 48 synthetic cities"]
    lines.append(f"  3.8a: {len(s.points)} city points")
    for i, level in enumerate(s.levels):
        tag = "3.8b" if i == 0 else ("3.8c" if i == 1 else f"level {i}")
        lines.append(f"  {tag}: {len(level)} MBR groups")
    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    svg = os.path.join(out_dir, "fig38_stages.svg")
    render_pack_stages(s.levels, TABLE1_UNIVERSE).save(svg)
    lines.append(f"  rendering -> {svg}")
    report("fig38_stages", "\n".join(lines))
    return s


def test_stages_terminate_at_root(stages):
    assert len(stages.levels[-1]) == 1


def test_each_level_shrinks(stages):
    sizes = [len(level) for level in stages.levels]
    assert all(a > b for a, b in zip(sizes, sizes[1:]))


def test_stage_computation(benchmark):
    s = benchmark(run_fig38_stages, 48)
    assert s.depth >= 2
