"""Observability overhead: disabled instrumentation must be (nearly) free.

The obs call sites in the R-tree hot path reduce, while disabled, to one
module-attribute read per query (``track = obs.ENABLED``) plus a handful
of ``if track`` branches.  This module measures that cost directly:

- ``baseline``  — an uninstrumented re-implementation of the window-search
  loop, structurally identical to :meth:`RTree._search` minus every obs
  line (the tree the seed shipped, in effect);
- ``disabled``  — the real :meth:`RTree.search` with ``obs.ENABLED`` False;
- ``enabled``   — the real search with a registry recording.

The acceptance bar (ISSUE): disabled / baseline < 1.10 — under 10% search
throughput overhead.  Timing uses best-of-R over a fixed batch of windows
(minimum is the standard noise-robust estimator for microbenchmarks); the
three figures are also written to ``benchmarks/out/obs_overhead.txt``.
"""

import random
import time

import pytest

from repro import obs
from repro.geometry import Point, Rect
from repro.rtree.packing import pack

N_ITEMS = 2000
N_WINDOWS = 400
REPEATS = 7
MAX_DISABLED_OVERHEAD = 1.10


@pytest.fixture(scope="module")
def tree():
    rng = random.Random(17)
    items = [(Rect.from_point(Point(rng.uniform(0, 1000),
                                    rng.uniform(0, 1000))), i)
             for i in range(N_ITEMS)]
    return pack(items, max_entries=25, method="nn")


@pytest.fixture(scope="module")
def windows():
    rng = random.Random(23)
    out = []
    for _ in range(N_WINDOWS):
        x = rng.uniform(0, 950)
        y = rng.uniform(0, 950)
        out.append(Rect(x, y, x + 50, y + 50))
    return out


def baseline_search(root, window):
    """The seed's search loop with zero instrumentation — the yardstick."""
    results = []
    stack = [root]
    while stack:
        node = stack.pop()
        for e in node.entries:
            if e.rect.intersects(window):
                if node.is_leaf:
                    results.append(e.oid)
                else:
                    stack.append(e.child)
    return results


def best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_overhead_under_10_percent(tree, windows, report):
    assert not obs.is_enabled()
    root = tree.root

    def run_baseline():
        for w in windows:
            baseline_search(root, w)

    def run_real():
        for w in windows:
            tree.search(w)

    # Same answers before trusting the timings.
    assert [sorted(tree.search(w)) for w in windows[:20]] == \
           [sorted(baseline_search(root, w)) for w in windows[:20]]

    # Interleave so neither contender owns the warm cache.
    run_baseline(), run_real()
    t_baseline = best_of(REPEATS, run_baseline)
    t_disabled = best_of(REPEATS, run_real)

    obs.enable()
    try:
        t_enabled = best_of(REPEATS, run_real)
    finally:
        obs.disable()
        obs.default_registry().reset()

    ratio = t_disabled / t_baseline
    lines = [
        f"windows per batch : {N_WINDOWS}  (tree: {N_ITEMS} items, M=25)",
        f"baseline (no obs) : {t_baseline * 1e3:8.3f} ms",
        f"obs disabled      : {t_disabled * 1e3:8.3f} ms"
        f"   ({ratio:.3f}x baseline)",
        f"obs enabled       : {t_enabled * 1e3:8.3f} ms"
        f"   ({t_enabled / t_baseline:.3f}x baseline)",
    ]
    report("obs_overhead", "\n".join(lines))
    assert ratio < MAX_DISABLED_OVERHEAD, (
        f"disabled-obs search is {ratio:.3f}x the uninstrumented loop "
        f"(budget {MAX_DISABLED_OVERHEAD}x)")


def test_search_throughput_obs_disabled(benchmark, tree, windows):
    assert not obs.is_enabled()
    benchmark(lambda: [tree.search(w) for w in windows])


def test_search_throughput_obs_enabled(benchmark, tree, windows):
    obs.enable()
    try:
        benchmark(lambda: [tree.search(w) for w in windows])
    finally:
        obs.disable()
        obs.default_registry().reset()
