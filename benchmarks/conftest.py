"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  Besides pytest-benchmark's
timing table, each module writes the reproduced rows/series to
``benchmarks/out/<experiment>.txt`` via the ``report`` fixture so the
artefacts survive the run (and prints them, visible with ``pytest -s``).
"""

from __future__ import annotations

import os
from typing import Callable

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def _report(name: str, text: str) -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as f:
        f.write(text.rstrip() + "\n")
    print(f"\n[{name}]")
    print(text)


@pytest.fixture(scope="session")
def report() -> Callable[[str, str], None]:
    """Persist a reproduced table/series and echo it to stdout."""
    return _report
