"""E23 — durability cost: write-ahead logging overhead and recovery speed.

The WAL buys crash safety (acknowledged writes survive ``kill -9``) at
the price of writing every dirtied page twice — once to the log, once
in place.  This experiment measures that price on the insert path in
each sync mode, confirms the *read* path is untouched, and times
recovery as a function of the committed backlog.
"""

import os
import time

import pytest

from repro.geometry import Point, Rect
from repro.relational.persistent import PersistentRelation
from repro.relational.relation import Column

SCHEMA = [Column("name", "str"), Column("v", "int"), Column("loc", "point")]
N = 1500


def _row(i):
    return {"name": f"row-{i}", "v": i,
            "loc": Point(float(i % 971), float((i * 7) % 971))}


def _open(tmp_dir, label, **kw):
    return PersistentRelation("bench", SCHEMA,
                              os.path.join(tmp_dir, f"{label}.db"),
                              page_size=4096, **kw)


@pytest.fixture(scope="module")
def wal_table(report, tmp_path_factory):
    tmp_dir = str(tmp_path_factory.mktemp("wal"))
    lines = [f"Insert throughput vs durability mode (n={N}, 4 KiB pages)",
             f"{'mode':>12} | {'inserts/s':>10} {'rel. cost':>9}"]
    rows = {}
    # "fsync" is what production durability costs; "none" isolates the
    # logging overhead itself from the disk-flush overhead.
    for label, kw in (("off", {"durable": False}),
                      ("wal", {"wal_sync": "none"}),
                      ("wal+fsync", {"wal_sync": "fsync"})):
        rel = _open(tmp_dir, label, **kw)
        t0 = time.perf_counter()
        for i in range(N):
            rel.insert(_row(i))
        elapsed = time.perf_counter() - t0
        rel.close()
        rows[label] = N / elapsed
        lines.append(f"{label:>12} | {rows[label]:>10.0f} "
                     f"{rows['off'] / rows[label]:>8.1f}x")
    report("wal_overhead", "\n".join(lines))
    return rows


def test_wal_overhead_is_bounded(wal_table):
    """Page-double-write without fsync must stay within one order of
    magnitude of raw speed — a regression here means the commit path
    started rewriting more than it logs."""
    assert wal_table["wal"] * 10 >= wal_table["off"]


@pytest.fixture(scope="module")
def recovery_table(report, tmp_path_factory):
    """Recovery time ~ committed backlog: crash with the whole workload
    still in the log (huge checkpoint threshold), then time the reopen."""
    tmp_dir = str(tmp_path_factory.mktemp("walrec"))
    lines = ["Crash recovery time vs backlog (uncheckpointed commits)",
             f"{'commits':>8} | {'wal bytes':>10} {'recover ms':>10}"]
    rows = {}
    for n in (100, 400, 1600):
        path = os.path.join(tmp_dir, f"r{n}.db")
        rel = PersistentRelation("bench", SCHEMA, path, page_size=4096,
                                 wal_sync="none",
                                 checkpoint_bytes=1 << 40)
        for i in range(n):
            rel.insert(_row(i))
        # Crash: force the data file stale by dropping every handle
        # with the full history only in the WAL.
        wal_bytes = rel._heap.pager.wal.size_bytes
        del rel
        t0 = time.perf_counter()
        rel = PersistentRelation("bench", SCHEMA, path, page_size=4096,
                                 wal_sync="none")
        ms = (time.perf_counter() - t0) * 1000
        assert len(rel) == n
        rel.close()
        rows[n] = (wal_bytes, ms)
        lines.append(f"{n:>8} | {wal_bytes:>10} {ms:>10.1f}")
    report("wal_recovery", "\n".join(lines))
    return rows


def test_recovery_restores_every_commit(recovery_table):
    assert set(recovery_table) == {100, 400, 1600}


def test_recovery_scales_roughly_linearly(recovery_table):
    """16x the backlog should not cost more than ~64x the time — replay
    is a single sequential scan plus one write per distinct page."""
    _b100, t100 = recovery_table[100]
    _b1600, t1600 = recovery_table[1600]
    assert t1600 <= max(t100, 1.0) * 64


def test_search_path_pays_nothing(benchmark, tmp_path_factory):
    """The read path never touches the WAL: window queries over a
    durable relation go through the same buffer pool and pager reads
    as before the WAL existed (the <5 % acceptance bar lives in
    bench_storage_io.py; this pins the relation-level path)."""
    tmp_dir = str(tmp_path_factory.mktemp("walsearch"))
    rel = _open(tmp_dir, "search", wal_sync="none")
    for i in range(800):
        rel.insert(_row(i))
    tree = rel.build_spatial_index("loc", max_entries=32)
    window = Rect(200, 200, 500, 500)
    expected = len(tree.search(window))
    result = benchmark(lambda: len(tree.search(window)))
    assert result == expected
    rel.close()


def test_insert_throughput_wal_none(benchmark, tmp_path_factory):
    tmp_dir = str(tmp_path_factory.mktemp("walins"))
    rel = _open(tmp_dir, "ins", wal_sync="none")
    counter = iter(range(10 ** 9))

    def one_insert():
        rel.insert(_row(next(counter)))

    benchmark(one_insert)
    rel.close()
