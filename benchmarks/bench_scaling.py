"""Scaling sweep beyond the paper's J = 900.

The paper's experiments stop at 900 objects (1985 hardware); a modern
user cares whether PACK's advantages persist at realistic sizes and
block fan-outs.  Sweeps n up to 50k at fanout 50 and reports build
time proxy (benchmarked separately), depth, nodes and accesses.
"""

import pytest

from repro.geometry import Rect
from repro.rtree.metrics import average_nodes_visited
from repro.rtree.packing import pack
from repro.rtree.tree import RTree
from repro.workloads import random_point_probes, uniform_points

SIZES = (1_000, 5_000, 20_000, 50_000)
FANOUT = 50


def items_of(n):
    return [(Rect.from_point(p), i)
            for i, p in enumerate(uniform_points(n, seed=n))]


@pytest.fixture(scope="module")
def sweep(report):
    probes = random_point_probes(200, seed=23)
    lines = [f"Scaling sweep (fanout {FANOUT}, 200 point probes)",
             f"{'n':>7} | {'pack D':>6} {'pack N':>7} {'pack A':>7} | "
             f"{'ins D':>5} {'ins N':>6} {'ins A':>6}"]
    rows = {}
    for n in SIZES:
        items = items_of(n)
        packed = pack(items, max_entries=FANOUT)
        dynamic = RTree(max_entries=FANOUT, split="linear")
        dynamic.insert_all(items)
        pa = average_nodes_visited(packed, probes)
        da = average_nodes_visited(dynamic, probes)
        rows[n] = (packed.depth, packed.node_count, pa,
                   dynamic.depth, dynamic.node_count, da)
        lines.append(f"{n:>7} | {packed.depth:>6} {packed.node_count:>7} "
                     f"{pa:>7.2f} | {dynamic.depth:>5} "
                     f"{dynamic.node_count:>6} {da:>6.2f}")
    report("scaling", "\n".join(lines))
    return rows


def test_pack_advantage_persists_at_scale(sweep):
    for n in SIZES:
        pd, pn, pa, dd, dn, da = sweep[n]
        assert pd <= dd
        assert pn <= dn
        assert pa <= da * 1.05


def test_pack_50k(benchmark):
    items = items_of(20_000)
    tree = benchmark.pedantic(pack, args=(items, FANOUT),
                              rounds=3, iterations=1)
    assert len(tree) == 20_000


def test_insert_20k(benchmark):
    items = items_of(20_000)

    def build():
        t = RTree(max_entries=FANOUT, split="linear")
        t.insert_all(items)
        return t

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(tree) == 20_000


def test_window_query_50k(benchmark):
    items = items_of(50_000)
    tree = pack(items, max_entries=FANOUT)
    window = Rect(480, 480, 520, 520)
    hits = benchmark(tree.search, window)
    assert hits
