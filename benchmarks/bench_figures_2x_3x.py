"""Figures 2.1, 2.2, 3.1 and 3.2 — rendered picture artefacts.

These figures illustrate rather than measure; the regeneration writes
the equivalent pictures as SVG:

- fig21: the paper's direct-search query output (cities in a window with
  the alphanumeric table beside the picture).
- fig22: the juxtaposed cities + time-zone maps.
- fig31: a (packed) R-tree over city *points*, MBRs drawn per level.
- fig32: a (packed) R-tree over state *regions*.

Figure 1.1 is the system architecture diagram (alphanumeric processor +
pictorial processor); it is documented in DESIGN.md rather than rendered.
"""

import os

import pytest

from repro.psql import Session
from repro.relational import Column, Database
from repro.rtree.packing import pack
from repro.viz import render_query_result, render_rtree
from repro.workloads import build_us_map

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="module")
def loaded():
    the_map = build_us_map(seed=42)
    db = Database()
    cities = db.create_relation("cities", [
        Column("city", "str"), Column("state", "str"),
        Column("population", "int"), Column("loc", "point")])
    for c in the_map.cities:
        cities.insert({"city": c.name, "state": c.state,
                       "population": c.population, "loc": c.loc})
    zones = db.create_relation("time-zones", [
        Column("zone", "str"), Column("hour-diff", "int"),
        Column("loc", "region")])
    for z in the_map.time_zones:
        zones.insert({"zone": z.zone, "hour-diff": z.hour_diff,
                      "loc": z.loc})
    db.create_picture("us-map", the_map.universe).register(cities, "loc")
    db.create_picture("time-zone-map", the_map.universe).register(
        zones, "loc")
    return db, the_map


@pytest.fixture(scope="module")
def artefacts(report, loaded):
    db, the_map = loaded
    os.makedirs(OUT_DIR, exist_ok=True)
    session = Session(db)
    paths = {}

    # Figure 2.1: direct spatial search output.
    r21 = session.execute(
        "select city, state, population, loc from cities on us-map "
        "at loc covered-by {500 ± 250, 500 ± 250} "
        "where population > 450_000")
    paths["fig21"] = os.path.join(OUT_DIR, "fig21_direct_search.svg")
    render_query_result(r21, the_map.universe).save(paths["fig21"])

    # Figure 2.2: juxtaposition of the two maps.
    r22 = session.execute(
        "select city, zone, cities.loc from cities, time-zones "
        "on us-map, time-zone-map "
        "at cities.loc covered-by time-zones.loc")
    paths["fig22"] = os.path.join(OUT_DIR, "fig22_juxtaposition.svg")
    render_query_result(r22, the_map.universe).save(paths["fig22"])

    # Figure 3.1: R-tree over city points; Figure 3.2: over state regions.
    city_tree = pack(the_map.city_items(), max_entries=4)
    paths["fig31"] = os.path.join(OUT_DIR, "fig31_city_rtree.svg")
    render_rtree(city_tree, world=the_map.universe).save(paths["fig31"])
    state_tree = pack(the_map.state_items(), max_entries=4)
    paths["fig32"] = os.path.join(OUT_DIR, "fig32_state_rtree.svg")
    render_rtree(state_tree, world=the_map.universe).save(paths["fig32"])

    report("figures_2x_3x", "\n".join(
        ["Rendered figure artefacts:"]
        + [f"  {name}: {path}  "
           for name, path in sorted(paths.items())]
        + [f"  fig21 rows: {len(r21)}; fig22 pairs: {len(r22)}"]))
    return paths, len(r21), len(r22)


def test_artefacts_written(artefacts):
    paths, n21, n22 = artefacts
    for path in paths.values():
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as f:
            assert f.read(4) == "<svg"
    assert n21 > 0 and n22 > 0


def test_render_city_tree_speed(benchmark, loaded):
    _db, the_map = loaded
    tree = pack(the_map.city_items(), max_entries=4)
    canvas = benchmark(render_rtree, tree, the_map.universe)
    assert canvas.to_svg()
