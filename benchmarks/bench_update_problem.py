"""E15 — Section 3.4, "The Update Problem".

"INSERT (and analogously DELETE) and PACK can complement each other":
this experiment PACKs a tree, then applies growing batches of random
inserts/deletes and tracks how far search quality degrades from the
packed optimum — and how a re-PACK restores it.
"""

import random

import pytest

from repro.geometry import Point, Rect
from repro.rtree.metrics import average_nodes_visited, coverage
from repro.rtree.packing import pack
from repro.workloads import random_point_probes, uniform_points

N = 800
BATCHES = (0, 50, 100, 200, 400)


def fresh_tree():
    pts = uniform_points(N, seed=8)
    items = [(Rect.from_point(p), i) for i, p in enumerate(pts)]
    return pack(items, max_entries=4), dict((i, r) for r, i in items)


def apply_updates(tree, live, count, seed):
    rng = random.Random(seed)
    next_id = max(live) + 1
    for _ in range(count):
        if rng.random() < 0.5 and live:
            oid = rng.choice(list(live))
            tree.delete(live.pop(oid), oid)
        else:
            r = Rect.from_point(Point(rng.uniform(0, 1000),
                                      rng.uniform(0, 1000)))
            tree.insert(r, next_id)
            live[next_id] = r
            next_id += 1


@pytest.fixture(scope="module")
def degradation(report):
    probes = random_point_probes(400, seed=9)
    lines = [f"Update problem: packed tree under update batches (n={N})",
             f"{'updates':>8} | {'A':>6} {'C':>9} {'nodes':>6}"]
    series = []
    for batch in BATCHES:
        tree, live = fresh_tree()
        apply_updates(tree, live, batch, seed=batch)
        a = average_nodes_visited(tree, probes)
        series.append((batch, a))
        lines.append(f"{batch:>8} | {a:>6.2f} {coverage(tree):>9.0f} "
                     f"{tree.node_count:>6}")
    # Re-PACK after the heaviest batch.
    tree, live = fresh_tree()
    apply_updates(tree, live, BATCHES[-1], seed=BATCHES[-1])
    repacked = pack([(r, i) for i, r in live.items()], max_entries=4)
    a = average_nodes_visited(repacked, probes)
    lines.append(f"{'re-pack':>8} | {a:>6.2f} {coverage(repacked):>9.0f} "
                 f"{repacked.node_count:>6}")
    report("update_problem", "\n".join(lines))
    return series, a


def test_updates_do_not_break_search(degradation):
    series, _ = degradation
    assert all(a >= 1.0 for _b, a in series)


def test_repack_restores_quality(degradation):
    series, repacked_a = degradation
    degraded_a = series[-1][1]
    assert repacked_a <= degraded_a * 1.10  # re-pack at least as good


@pytest.fixture(scope="module")
def local_repack_series(report):
    """E15b — the paper's Section 4 future work: local re-packing."""
    from repro.rtree import local_repack
    from repro.geometry import Rect as _R
    probes = random_point_probes(400, seed=9)
    tree, live = fresh_tree()
    apply_updates(tree, live, 400, seed=400)
    degraded_a = average_nodes_visited(tree, probes)
    hot_spot = _R(250, 250, 750, 750)
    result = local_repack(tree, region=hot_spot)
    local_a = average_nodes_visited(tree, probes)
    full = local_repack(tree)
    full_a = average_nodes_visited(tree, probes)
    report("update_problem_local_repack", "\n".join([
        "Section 4 future work: local re-pack after 400 updates",
        f"  degraded tree:             A={degraded_a:.2f}",
        f"  after local repack (hot spot, {result.entries_repacked} "
        f"entries): A={local_a:.2f}",
        f"  after full repack ({full.entries_repacked} entries): "
        f"A={full_a:.2f}",
    ]))
    return degraded_a, local_a, full_a


def test_local_repack_restores_quality(local_repack_series):
    degraded_a, local_a, full_a = local_repack_series
    assert full_a <= degraded_a
    assert local_a <= degraded_a * 1.05


def test_local_repack_speed(benchmark):
    from repro.rtree import local_repack

    def run():
        tree, live = fresh_tree()
        apply_updates(tree, live, 200, seed=1)
        return local_repack(tree)

    result = benchmark(run)
    assert result.entries_repacked > 0


def test_update_burst_speed(benchmark):
    def run():
        tree, live = fresh_tree()
        apply_updates(tree, live, 200, seed=1)
        return tree

    tree = benchmark(run)
    assert len(tree) > 0


def test_repack_speed(benchmark):
    tree, live = fresh_tree()
    apply_updates(tree, live, 200, seed=1)
    items = [(r, i) for i, r in live.items()]
    repacked = benchmark(pack, items, 4)
    assert len(repacked) == len(items)
