"""E15 — Section 3.4, "The Update Problem".

"INSERT (and analogously DELETE) and PACK can complement each other":
this experiment PACKs a tree, then applies growing batches of random
inserts/deletes and tracks how far search quality degrades from the
packed optimum — and how a re-PACK restores it.
"""

import random

import pytest

from repro.geometry import Point, Rect
from repro.rtree.metrics import average_nodes_visited, coverage
from repro.rtree.packing import pack
from repro.workloads import random_point_probes, uniform_points

N = 800
BATCHES = (0, 50, 100, 200, 400)


def fresh_tree():
    pts = uniform_points(N, seed=8)
    items = [(Rect.from_point(p), i) for i, p in enumerate(pts)]
    return pack(items, max_entries=4), dict((i, r) for r, i in items)


def apply_updates(tree, live, count, seed):
    rng = random.Random(seed)
    next_id = max(live) + 1
    for _ in range(count):
        if rng.random() < 0.5 and live:
            oid = rng.choice(list(live))
            tree.delete(live.pop(oid), oid)
        else:
            r = Rect.from_point(Point(rng.uniform(0, 1000),
                                      rng.uniform(0, 1000)))
            tree.insert(r, next_id)
            live[next_id] = r
            next_id += 1


@pytest.fixture(scope="module")
def degradation(report):
    probes = random_point_probes(400, seed=9)
    lines = [f"Update problem: packed tree under update batches (n={N})",
             f"{'updates':>8} | {'A':>6} {'C':>9} {'nodes':>6}"]
    series = []
    for batch in BATCHES:
        tree, live = fresh_tree()
        apply_updates(tree, live, batch, seed=batch)
        a = average_nodes_visited(tree, probes)
        series.append((batch, a))
        lines.append(f"{batch:>8} | {a:>6.2f} {coverage(tree):>9.0f} "
                     f"{tree.node_count:>6}")
    # Re-PACK after the heaviest batch.
    tree, live = fresh_tree()
    apply_updates(tree, live, BATCHES[-1], seed=BATCHES[-1])
    repacked = pack([(r, i) for i, r in live.items()], max_entries=4)
    a = average_nodes_visited(repacked, probes)
    lines.append(f"{'re-pack':>8} | {a:>6.2f} {coverage(repacked):>9.0f} "
                 f"{repacked.node_count:>6}")
    report("update_problem", "\n".join(lines))
    return series, a


def test_updates_do_not_break_search(degradation):
    series, _ = degradation
    assert all(a >= 1.0 for _b, a in series)


def test_repack_restores_quality(degradation):
    series, repacked_a = degradation
    degraded_a = series[-1][1]
    assert repacked_a <= degraded_a * 1.10  # re-pack at least as good


@pytest.fixture(scope="module")
def local_repack_series(report):
    """E15b — the paper's Section 4 future work: local re-packing."""
    from repro.rtree import local_repack
    from repro.geometry import Rect as _R
    probes = random_point_probes(400, seed=9)
    tree, live = fresh_tree()
    apply_updates(tree, live, 400, seed=400)
    degraded_a = average_nodes_visited(tree, probes)
    hot_spot = _R(250, 250, 750, 750)
    result = local_repack(tree, region=hot_spot)
    local_a = average_nodes_visited(tree, probes)
    full = local_repack(tree)
    full_a = average_nodes_visited(tree, probes)
    report("update_problem_local_repack", "\n".join([
        "Section 4 future work: local re-pack after 400 updates",
        f"  degraded tree:             A={degraded_a:.2f}",
        f"  after local repack (hot spot, {result.entries_repacked} "
        f"entries): A={local_a:.2f}",
        f"  after full repack ({full.entries_repacked} entries): "
        f"A={full_a:.2f}",
    ]))
    return degraded_a, local_a, full_a


def test_local_repack_restores_quality(local_repack_series):
    degraded_a, local_a, full_a = local_repack_series
    assert full_a <= degraded_a
    assert local_a <= degraded_a * 1.05


@pytest.fixture(scope="module")
def maintenance_series(report, tmp_path_factory):
    """E15c — the background maintenance loop under sustained churn.

    Two identical disk-backed picture indexes take the same hot-spot
    churn; one runs a maintenance cycle after every batch (the daemon's
    behaviour, synchronous here for determinism), the other is left
    alone.  The metric is the advisor's packing-degradation ratio:
    expected window cost on the live tree vs its freshly re-packed self,
    so 1.0 *is* the fresh-pack baseline.
    """
    import os as _os

    from repro.advisor.whatif import packed_degradation
    from repro.relational.catalog import Database
    from repro.relational.relation import Column
    from repro.rtree.maintenance import (MaintenanceConfig,
                                         run_maintenance_cycle)

    n, batches, per_batch = 1200, 4, 600
    config = MaintenanceConfig(warn_ratio=1.25)

    def build(tmp):
        rng = random.Random(41)
        db = Database()
        pts = db.create_relation("points", [
            Column("id", "int"), Column("loc", "point")])
        for i in range(n):
            pts.insert({"id": i, "loc": Point(rng.uniform(0, 1000),
                                              rng.uniform(0, 1000))})
        pic = db.create_picture("map", Rect(0, 0, 1000, 1000))
        pic.register_disk(pts, "loc", _os.path.join(tmp, "map.db"),
                          max_entries=8)
        return db

    def churn_batch(db, seed):
        rng = random.Random(seed)
        pts = db.relation("points")
        for k in range(per_batch):
            if k % 3 != 2:
                x = min(max(rng.gauss(150.0, 40.0), 0.0), 1000.0)
                y = min(max(rng.gauss(150.0, 40.0), 0.0), 1000.0)
                db.insert("points", {"id": seed * 10_000 + k,
                                     "loc": Point(x, y)})
            else:
                rid = rng.choice([rid for rid, _ in pts.rows()])
                db.delete("points", rid)

    def ratio(db):
        r, _, _ = packed_degradation(db, "map", "points", "loc")
        return r

    control = build(str(tmp_path_factory.mktemp("churn-off")))
    maintained = build(str(tmp_path_factory.mktemp("churn-on")))
    lines = [f"Maintenance daemon under churn (n={n}, "
             f"{batches}x{per_batch} updates; cost vs fresh-pack)",
             f"{'batch':>6} | {'daemon off':>10} {'daemon on':>10}"]
    series = []
    for batch in range(1, batches + 1):
        churn_batch(control, seed=batch)
        churn_batch(maintained, seed=batch)
        run_maintenance_cycle(maintained, config)
        series.append((ratio(control), ratio(maintained)))
        lines.append(f"{batch:>6} | {series[-1][0]:>9.2f}x "
                     f"{series[-1][1]:>9.2f}x")
    report("update_problem_maintenance", "\n".join(lines))
    return series


def test_daemon_off_degrades_past_bound(maintenance_series):
    """The control arm reproduces Section 3.4: unattended churn pushes
    expected search cost past the 1.25x WARN bound."""
    assert maintenance_series[-1][0] >= 1.25


def test_daemon_on_holds_fresh_pack_cost(maintenance_series):
    """The acceptance bar: with the maintenance loop running, search
    cost stays within 1.25x of the fresh-pack baseline throughout."""
    assert all(on <= 1.25 for _off, on in maintenance_series)


def test_local_repack_speed(benchmark):
    from repro.rtree import local_repack

    def run():
        tree, live = fresh_tree()
        apply_updates(tree, live, 200, seed=1)
        return local_repack(tree)

    result = benchmark(run)
    assert result.entries_repacked > 0


def test_update_burst_speed(benchmark):
    def run():
        tree, live = fresh_tree()
        apply_updates(tree, live, 200, seed=1)
        return tree

    tree = benchmark(run)
    assert len(tree) > 0


def test_repack_speed(benchmark):
    tree, live = fresh_tree()
    apply_updates(tree, live, 200, seed=1)
    items = [(r, i) for i, r in live.items()]
    repacked = benchmark(pack, items, 4)
    assert len(repacked) == len(items)
