"""E2 — Figure 3.4: dead space left by dynamic INSERT.

The eight-point configuration where requirement (2) of Guttman's scheme
("new data objects must be added to pre-existing leaves") creates
useless covered space that PACK avoids.
"""

import pytest

from repro.experiments.figures import (
    FIG34_ORDER,
    FIG34_POINTS,
    run_fig34_deadspace,
)
from repro.geometry import Rect
from repro.rtree.packing import pack
from repro.rtree.tree import RTree


@pytest.fixture(scope="module")
def result(report):
    r = run_fig34_deadspace()
    report("fig34_deadspace", "\n".join([
        "Figure 3.4 — eight points, two natural clusters",
        f"  INSERT coverage: {r.insert_coverage:.2f} over "
        f"{r.insert_leaves} leaves",
        f"  PACK   coverage: {r.pack_coverage:.2f} over "
        f"{r.pack_leaves} leaves",
        f"  dead space created by INSERT: {r.dead_space:.2f} "
        f"({r.dead_space / r.pack_coverage:.1f}x the optimal coverage)",
    ]))
    return r


def test_dead_space_positive(result):
    assert result.dead_space > 0


def test_insert_eight_points(benchmark):
    items = [(Rect.from_point(FIG34_POINTS[i]), i) for i in FIG34_ORDER]

    def build():
        t = RTree(max_entries=4, split="linear")
        t.insert_all(items)
        return t

    tree = benchmark(build)
    assert len(tree) == 8


def test_pack_eight_points(benchmark):
    items = [(Rect.from_point(FIG34_POINTS[i]), i) for i in FIG34_ORDER]
    tree = benchmark(pack, items, 4)
    assert len(tree) == 8
