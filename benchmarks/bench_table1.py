"""E1 — Table 1: Guttman INSERT vs PACK (Section 3.5).

Regenerates the paper's full table (all 17 J values, 1000 point probes,
branching factor 4) into ``benchmarks/out/table1.txt`` and benchmarks
the two construction algorithms plus the probe workload at J=900.

Two environment knobs shrink the sweep for CI smoke runs:

- ``REPRO_TABLE1_JS``      comma-separated J values (default: all 17)
- ``REPRO_TABLE1_QUERIES`` point probes per row (default: 1000)
"""

import os

import pytest

from repro import obs
from repro.experiments import format_table1, run_table1
from repro.geometry import Rect
from repro.rtree.metrics import average_nodes_visited
from repro.rtree.packing import pack
from repro.rtree.tree import RTree
from repro.workloads import TABLE1_J_VALUES, random_point_probes, uniform_points

J_BENCH = 900


def _env_j_values():
    raw = os.environ.get("REPRO_TABLE1_JS", "")
    if not raw.strip():
        return list(TABLE1_J_VALUES)
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def _env_queries():
    return int(os.environ.get("REPRO_TABLE1_QUERIES", "1000"))


@pytest.fixture(scope="module")
def items():
    pts = uniform_points(J_BENCH, seed=0)
    return [(Rect.from_point(p), i) for i, p in enumerate(pts)]


@pytest.fixture(scope="module")
def full_table(report):
    """Regenerate the whole Table 1 once per benchmark run."""
    rows = run_table1(j_values=_env_j_values(), queries=_env_queries())
    report("table1", format_table1(rows, include_paper=True))
    return rows


def test_table1_shapes_hold(full_table):
    """The headline comparison: PACK wins on D, N, O and A at scale.

    D and N are deterministic and must hold row by row; O and A vary
    with the random point set, so they are asserted in aggregate over
    the large-J rows (a single lucky INSERT tree may tie one row).
    """
    big = [r for r in full_table if r.j >= 400]
    if not big:
        pytest.skip("REPRO_TABLE1_JS smoke run has no rows with J >= 400")
    assert all(r.pack.depth <= r.insert.depth for r in big)
    assert all(r.pack.node_count < r.insert.node_count for r in big)
    assert (sum(r.pack.overlap_counted for r in big)
            < sum(r.insert.overlap_counted for r in big))
    assert (sum(r.pack.avg_nodes_visited for r in big)
            < sum(r.insert.avg_nodes_visited for r in big))


def test_build_insert(benchmark, items):
    def build():
        t = RTree(max_entries=4, split="linear")
        t.insert_all(items)
        return t

    tree = benchmark(build)
    assert len(tree) == J_BENCH


def test_build_pack(benchmark, items):
    tree = benchmark(pack, items, 4, "nn")
    assert len(tree) == J_BENCH


def test_point_queries_insert(benchmark, items):
    t = RTree(max_entries=4, split="linear")
    t.insert_all(items)
    probes = random_point_probes(1000, seed=1)
    avg = benchmark(average_nodes_visited, t, probes)
    assert avg >= 1.0


def test_point_queries_pack(benchmark, items):
    t = pack(items, max_entries=4)
    probes = random_point_probes(1000, seed=1)
    avg = benchmark(average_nodes_visited, t, probes)
    assert avg >= 1.0


def test_table1_regeneration(benchmark, full_table):
    """Time one full J=300 row (both builds + 1000 probes)."""
    from repro.experiments import run_table1_row
    row = benchmark(run_table1_row, 300)
    assert row.j == 300


def test_table1_invariant_under_instrumentation():
    """C/O/D/N/A are identical with observability enabled vs disabled.

    Counting node visits must never change what is counted: the rows are
    frozen dataclasses, so equality below is exact field-wise equality of
    every Table 1 column.
    """
    from repro.experiments import run_table1_row
    assert not obs.is_enabled()
    baseline = run_table1_row(100, queries=200, seed=5)
    with obs.scope(enable=True):
        instrumented = run_table1_row(100, queries=200, seed=5)
    assert instrumented == baseline
