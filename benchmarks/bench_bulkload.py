"""E24 — bulk-load construction cost: insert-loop vs PACK vs streaming.

The paper's Table 1 argument is that a packed tree is *cheaper to build*
and better to search than one grown by repeated INSERT.  This experiment
extends that comparison to the disk tree at modern scales: the
tuple-at-a-time insert loop, the in-memory PACK
(:meth:`DiskRTree.bulk_load`), and the out-of-core streaming pipeline
(:func:`repro.rtree.bulkload.bulk_load_stream`), which must match the
in-memory build's query results while never materialising the item set.

Knobs (environment):

- ``REPRO_BULKLOAD_N`` — streamed/packed item count (default 20_000;
  the acceptance-scale run uses 1_000_000).
- ``REPRO_BULKLOAD_INSERT_N`` — insert-loop item count (default 4_000:
  the loop is the O(n log n)-with-big-constants baseline, so it gets a
  smaller n and rates are compared per item).
- ``REPRO_BULKLOAD_RUN_SIZE`` — external-sort run length (default
  50_000).
- ``REPRO_BULKLOAD_WORKERS`` — sort-phase worker processes (default 0).
"""

import os
import time

import pytest

from repro.geometry import Rect
from repro.rtree.bulkload import bulk_load_stream
from repro.rtree.search import SearchStats
from repro.storage.disk_rtree import DiskRTree
from repro.workloads import (clustered_points, random_windows,
                             stream_uniform_point_items)

N = int(os.environ.get("REPRO_BULKLOAD_N", "20000"))
INSERT_N = int(os.environ.get("REPRO_BULKLOAD_INSERT_N", "4000"))
RUN_SIZE = int(os.environ.get("REPRO_BULKLOAD_RUN_SIZE", "50000"))
WORKERS = int(os.environ.get("REPRO_BULKLOAD_WORKERS", "0"))
SEED = 77
CHECK_WINDOWS = 200


def _rate(n, elapsed):
    return n / max(elapsed, 1e-9)


@pytest.fixture(scope="module")
def build_rates(report, tmp_path_factory):
    tmp = str(tmp_path_factory.mktemp("bulk"))
    rows: dict[str, float] = {}

    t0 = time.perf_counter()
    with DiskRTree(os.path.join(tmp, "insert.db")) as tree:
        for rect, oid in stream_uniform_point_items(INSERT_N, seed=SEED):
            tree.insert(rect, oid)
    rows["insert-loop"] = _rate(INSERT_N, time.perf_counter() - t0)

    t0 = time.perf_counter()
    with DiskRTree(os.path.join(tmp, "pack.db")) as tree:
        tree.bulk_load(list(stream_uniform_point_items(N, seed=SEED)))
    rows["in-memory PACK"] = _rate(N, time.perf_counter() - t0)

    t0 = time.perf_counter()
    with DiskRTree(os.path.join(tmp, "stream.db")) as tree:
        stats = bulk_load_stream(
            tree, stream_uniform_point_items(N, seed=SEED),
            run_size=RUN_SIZE, workers=WORKERS)
    rows["streaming"] = _rate(N, time.perf_counter() - t0)

    lines = [f"Disk-tree construction rates "
             f"(stream n={N}, insert n={INSERT_N}, run={RUN_SIZE}, "
             f"workers={WORKERS}; runs={stats.runs})",
             f"{'builder':>16} | {'items/s':>10} {'vs insert':>9}"]
    for label, rate in rows.items():
        lines.append(f"{label:>16} | {rate:>10.0f} "
                     f"{rate / rows['insert-loop']:>8.1f}x")
    report("bulkload", "\n".join(lines))
    return rows


def test_streaming_beats_insert_loop_5x(build_rates):
    """The acceptance bar: the pipeline loads at least 5x faster per
    item than the tuple-at-a-time insert loop."""
    assert build_rates["streaming"] >= 5.0 * build_rates["insert-loop"]


def test_streaming_within_reach_of_in_memory_pack(build_rates):
    """Spilling through disk runs costs something, but the pipeline must
    stay within 10x of the all-in-RAM pack, or it has regressed into
    accidental quadratic territory."""
    assert build_rates["streaming"] * 10 >= build_rates["in-memory PACK"]


def test_streaming_matches_in_memory_results(report, tmp_path_factory):
    """Equivalence at benchmark scale: identical search/point results on
    random windows (the acceptance criterion's 200-window check)."""
    tmp = str(tmp_path_factory.mktemp("bulkeq"))
    with DiskRTree(os.path.join(tmp, "mem.db")) as reference, \
            DiskRTree(os.path.join(tmp, "ooc.db")) as streamed:
        reference.bulk_load(list(stream_uniform_point_items(N, seed=SEED)))
        bulk_load_stream(streamed,
                         stream_uniform_point_items(N, seed=SEED),
                         run_size=RUN_SIZE, workers=WORKERS)
        assert len(streamed) == len(reference) == N
        mismatches = 0
        for window in random_windows(CHECK_WINDOWS, max_extent=60.0,
                                     seed=SEED + 1):
            if sorted(streamed.search(window)) != \
                    sorted(reference.search(window)):
                mismatches += 1
        assert mismatches == 0
    report("bulkload_equivalence",
           f"{CHECK_WINDOWS} random windows over n={N}: 0 mismatches "
           f"between streaming pipeline and in-memory PACK")


@pytest.fixture(scope="module")
def adaptive_ablation(report, tmp_path_factory):
    """E24b — the sample-based adaptive partitioner vs fixed hilbert.

    Clustered points are the paper's motivating cartographic shape; the
    adaptive chooser samples the stream, scores the candidate groupings
    on coverage + overlap, and must never pick a layout that searches
    worse than the hilbert default.
    """
    n = min(N, 20000)
    tmp = str(tmp_path_factory.mktemp("bulkadapt"))
    items = [(Rect.from_point(p), i)
             for i, p in enumerate(clustered_points(n, clusters=6,
                                                    spread=25.0, seed=SEED))]
    windows = list(random_windows(CHECK_WINDOWS, max_extent=80.0,
                                  seed=SEED + 2))
    costs: dict[str, float] = {}
    answers: dict[str, list] = {}
    for method in ("hilbert", "adaptive"):
        with DiskRTree(os.path.join(tmp, f"{method}.db")) as tree:
            bulk_load_stream(tree, iter(items), method=method,
                             run_size=RUN_SIZE)
            visited = 0
            per_window = []
            for window in windows:
                stats = SearchStats()
                per_window.append(sorted(tree.search(window, stats=stats)))
                visited += stats.nodes_visited
            costs[method] = visited / len(windows)
            answers[method] = per_window
    lines = [f"Adaptive partitioner ablation (clustered n={n}, "
             f"{CHECK_WINDOWS} windows)",
             f"{'method':>10} | {'nodes/query':>11}"]
    for method, cost in costs.items():
        lines.append(f"{method:>10} | {cost:>11.2f}")
    report("bulkload_adaptive", "\n".join(lines))
    return costs, answers


def test_adaptive_matches_or_beats_hilbert_on_clusters(adaptive_ablation):
    """The acceptance bar: adaptive never loses to the hilbert default
    on the clustered workload (small tolerance for sampling noise)."""
    costs, _ = adaptive_ablation
    assert costs["adaptive"] <= costs["hilbert"] * 1.05


def test_adaptive_answers_match_hilbert(adaptive_ablation):
    _, answers = adaptive_ablation
    assert answers["adaptive"] == answers["hilbert"]


def test_benchmark_streaming_build(benchmark, tmp_path):
    """pytest-benchmark timing of the full pipeline at a small, stable n."""
    n = min(N, 20000)

    def build():
        path = str(tmp_path / "b.db")
        if os.path.exists(path):
            os.remove(path)
        with DiskRTree(path) as tree:
            bulk_load_stream(tree, stream_uniform_point_items(n, seed=3),
                             run_size=10000)
        return n

    assert benchmark.pedantic(build, rounds=3, iterations=1) == n
