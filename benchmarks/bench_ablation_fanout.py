"""E13 — ablation: branching factor.

The paper fixes M=4 for presentation and notes "extensions to higher
branching factors (that fill a logical disk block) are readily
apparent".  This sweep shows depth, node count and query accesses as M
grows to block-sized fan-outs.
"""

import pytest

from repro.geometry import Rect
from repro.rtree.metrics import tree_stats
from repro.rtree.packing import pack
from repro.rtree.tree import RTree
from repro.workloads import random_point_probes, uniform_points

N = 2000
FANOUTS = (4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def items():
    return [(Rect.from_point(p), i)
            for i, p in enumerate(uniform_points(N, seed=6))]


@pytest.fixture(scope="module")
def sweep(report, items):
    probes = random_point_probes(300, seed=7)
    lines = [f"Branching-factor sweep (n={N}, PACK nn vs INSERT linear)",
             f"{'M':>3} | {'pack D':>6} {'pack N':>7} {'pack A':>7} | "
             f"{'ins D':>5} {'ins N':>6} {'ins A':>7}"]
    rows = {}
    for m in FANOUTS:
        packed = pack(items, max_entries=m)
        sp = tree_stats(packed, probes)
        dynamic = RTree(max_entries=m, split="linear")
        dynamic.insert_all(items)
        si = tree_stats(dynamic, probes)
        rows[m] = (sp, si)
        lines.append(f"{m:>3} | {sp.depth:>6} {sp.node_count:>7} "
                     f"{sp.avg_nodes_visited:>7.2f} | {si.depth:>5} "
                     f"{si.node_count:>6} {si.avg_nodes_visited:>7.2f}")
    report("ablation_fanout", "\n".join(lines))
    return rows


def test_depth_decreases_with_fanout(sweep):
    depths = [sweep[m][0].depth for m in FANOUTS]
    assert depths == sorted(depths, reverse=True)
    assert depths[-1] < depths[0]


def test_pack_never_deeper_than_insert(sweep):
    for m in FANOUTS:
        sp, si = sweep[m]
        assert sp.depth <= si.depth
        assert sp.node_count <= si.node_count


@pytest.mark.parametrize("m", FANOUTS)
def test_pack_speed_by_fanout(benchmark, items, m):
    tree = benchmark(pack, items, m)
    assert len(tree) == N
