"""E16 — disk residency: page I/O for packed vs dynamic trees.

Section 1 argues R-trees are "better in dealing with paging and disk I/O
buffering".  This experiment puts both construction styles on 4 KiB
pages and counts physical page reads per window query, cold and warm.
"""

import os

import pytest

from repro.geometry import Rect
from repro.storage import DiskRTree
from repro.workloads import uniform_points, windows_of_selectivity

N = 3000


@pytest.fixture(scope="module")
def items():
    return [(Rect.from_point(p), i)
            for i, p in enumerate(uniform_points(N, seed=16))]


def build(tmp_dir, name, items, bulk):
    tree = DiskRTree(os.path.join(tmp_dir, name), max_entries=32,
                     buffer_capacity=16)
    if bulk:
        tree.bulk_load(items)
    else:
        for r, i in items:
            tree.insert(r, i)
    tree.flush()
    tree.pool.clear()
    return tree


@pytest.fixture(scope="module")
def io_table(report, items, tmp_path_factory):
    tmp_dir = str(tmp_path_factory.mktemp("diskio"))
    windows = windows_of_selectivity(50, 0.01, seed=17)
    lines = [f"Disk I/O per 1%-selectivity window query "
             f"(n={N}, fanout 32, 16-frame pool)",
             f"{'builder':>8} | {'pages':>6} {'cold rd/q':>10} "
             f"{'warm rd/q':>10} {'hit rate':>9}"]
    rows = {}
    for name, bulk in (("pack", True), ("insert", False)):
        tree = build(tmp_dir, f"{name}.db", items, bulk)
        reads0 = tree.pager.reads
        for w in windows:
            tree.search(w)
        cold = (tree.pager.reads - reads0) / len(windows)
        reads1 = tree.pager.reads
        for w in windows:
            tree.search(w)
        warm = (tree.pager.reads - reads1) / len(windows)
        rows[name] = (tree.pager.page_count, cold, warm,
                      tree.pool.stats.hit_rate)
        lines.append(f"{name:>8} | {tree.pager.page_count:>6} "
                     f"{cold:>10.2f} {warm:>10.2f} "
                     f"{tree.pool.stats.hit_rate:>9.1%}")
        tree.close()
    report("storage_io", "\n".join(lines))
    return rows


def test_pack_uses_fewer_pages(io_table):
    assert io_table["pack"][0] <= io_table["insert"][0]


def test_buffering_reduces_reads(io_table):
    for name in ("pack", "insert"):
        _pages, cold, warm, _hr = io_table[name]
        assert warm <= cold


def test_pack_fewer_cold_reads(io_table):
    assert io_table["pack"][1] <= io_table["insert"][1] * 1.10


@pytest.fixture(scope="module")
def policy_table(report, items, tmp_path_factory):
    """Replacement-policy ablation: LRU vs clock on the same workload."""
    tmp_dir = str(tmp_path_factory.mktemp("policies"))
    windows = windows_of_selectivity(80, 0.01, seed=18)
    lines = ["Buffer replacement policy (packed tree, 16-frame pool, "
             "80 windows)",
             f"{'policy':>7} | {'phys reads':>10} {'hit rate':>9}"]
    rows = {}
    for policy in ("lru", "clock"):
        tree = DiskRTree(os.path.join(tmp_dir, f"{policy}.db"),
                         max_entries=32, buffer_capacity=16,
                         buffer_policy=policy)
        tree.bulk_load(items)
        tree.flush()
        tree.pool.clear()
        reads0 = tree.pager.reads
        for w in windows:
            tree.search(w)
        reads = tree.pager.reads - reads0
        rows[policy] = (reads, tree.pool.stats.hit_rate)
        lines.append(f"{policy:>7} | {reads:>10} "
                     f"{tree.pool.stats.hit_rate:>9.1%}")
        tree.close()
    report("storage_policies", "\n".join(lines))
    return rows


def test_policies_within_factor_two(policy_table):
    """Clock approximates LRU; neither should be wildly worse."""
    lru_reads, _ = policy_table["lru"]
    clock_reads, _ = policy_table["clock"]
    assert clock_reads <= lru_reads * 2
    assert lru_reads <= clock_reads * 2


def test_disk_window_query_speed(benchmark, items, tmp_path_factory):
    tmp_dir = str(tmp_path_factory.mktemp("diskbench"))
    tree = build(tmp_dir, "bench.db", items, bulk=True)
    window = Rect(450, 450, 550, 550)
    hits = benchmark(tree.search, window)
    assert hits
    tree.close()


def test_disk_bulk_load_speed(benchmark, items, tmp_path_factory):
    tmp_dir = str(tmp_path_factory.mktemp("diskload"))
    counter = [0]

    def load():
        path = os.path.join(tmp_dir, f"load{counter[0]}.db")
        counter[0] += 1
        tree = DiskRTree(path, max_entries=32)
        tree.bulk_load(items)
        tree.close()

    benchmark.pedantic(load, rounds=3, iterations=1)
