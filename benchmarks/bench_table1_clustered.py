"""E21 — Table 1's protocol on clustered data (the paper's real domain).

Table 1 uses uniform points, but the paper's motivating databases are
maps — strongly clustered.  This experiment reruns the exact protocol on
Gaussian-mixture data.  Finding: PACK's structural advantages (D, N)
persist, but its greedy NN grouping *bridges* clusters via leftover
points, inflating coverage well past a good dynamic INSERT's — the
weakness STR's tiling later fixed.  See EXPERIMENTS.md E21.
"""

import pytest

from repro.experiments import format_table1, run_table1
from repro.workloads import clustered_points

J_VALUES = (100, 300, 600, 900)


def clustered(j: int, seed: int):
    return clustered_points(j, clusters=max(4, j // 60), spread=20.0,
                            seed=seed)


@pytest.fixture(scope="module")
def rows(report):
    got = run_table1(j_values=J_VALUES, queries=500, points_fn=clustered)
    uniform = run_table1(j_values=J_VALUES, queries=500)
    lines = ["Table 1 protocol on clustered data (Gaussian mixtures)",
             format_table1(got),
             "",
             "same J values on uniform data, for comparison",
             format_table1(uniform)]
    report("table1_clustered", "\n".join(lines))
    return got, uniform


def test_structure_columns_unchanged(rows):
    """D and N depend only on J, not the distribution."""
    clustered_rows, uniform_rows = rows
    for c, u in zip(clustered_rows, uniform_rows):
        assert c.pack.depth == u.pack.depth
        assert c.pack.node_count == u.pack.node_count


def test_cluster_bridging_effect(rows):
    """The honest negative finding this experiment documents: on strongly
    clustered data the paper's NN packing *bridges* clusters whenever a
    cluster's population is not a multiple of M — leftover points get
    grouped with far-away ones — so PACK's coverage materially exceeds a
    good dynamic INSERT's.  (This is precisely the weakness STR's
    tile-based packing later addressed.)"""
    clustered_rows, _ = rows
    big = [r for r in clustered_rows if r.j >= 300]
    pack_c = sum(r.pack.coverage for r in big)
    insert_c = sum(r.insert.coverage for r in big)
    assert pack_c > insert_c


def test_accesses_stay_competitive_on_clusters(rows):
    """Despite the coverage handicap, PACK's minimal node count keeps
    point-probe accesses within ~1.6x of INSERT's on clustered data."""
    clustered_rows, _ = rows
    big = [r for r in clustered_rows if r.j >= 300]
    pack_a = sum(r.pack.avg_nodes_visited for r in big)
    insert_a = sum(r.insert.avg_nodes_visited for r in big)
    assert pack_a < insert_a * 1.6


def test_clustered_row_speed(benchmark):
    from repro.experiments import run_table1_row
    row = benchmark(run_table1_row, 300, 200, 0, 4, "linear", "nn",
                    points_fn=clustered)
    assert row.j == 300
