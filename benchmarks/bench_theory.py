"""E6/E7/E8 — Lemma 3.1, Theorem 3.2 and Theorem 3.3 constructions.

These are the paper's theoretical results made executable: the rotation
that separates x-coordinates, the zero-overlap point partition, and the
exhaustive verification that the skewed-region counterexample admits no
zero-overlap grouping.
"""

import pytest

from repro.experiments.figures import run_lemma31, run_theorem32, run_theorem33
from repro.rtree.theory import (
    theorem_33_counterexample,
    verify_no_zero_overlap_grouping,
    zero_overlap_partition,
)
from repro.workloads import uniform_points


@pytest.fixture(scope="module")
def summary(report):
    l31 = run_lemma31()
    t32 = run_theorem32(n=200)
    t33 = run_theorem33()
    text = "\n".join([
        "Section 3.2 constructions",
        f"  Lemma 3.1: rotation {l31.angle:.4f} rad lifts distinct-x "
        f"{l31.distinct_before}/{l31.n} -> {l31.distinct_after}/{l31.n}",
        f"  Theorem 3.2: {t32.n} points -> {t32.groups} MBRs, "
        f"disjoint={t32.disjoint}, residual overlap={t32.overlap_area:.3g}",
        f"  Theorem 3.3: {t33.regions} skewed regions admit no zero-"
        f"overlap grouping = {t33.counterexample_holds}",
    ])
    report("theory", text)
    return l31, t32, t33


def test_all_theory_results_hold(summary):
    l31, t32, t33 = summary
    assert l31.distinct_after == l31.n
    assert t32.disjoint
    assert t33.counterexample_holds


def test_zero_overlap_partition_speed(benchmark):
    pts = uniform_points(400, seed=12)
    part = benchmark(zero_overlap_partition, pts, 4)
    assert part.is_disjoint()


def test_counterexample_verification_speed(benchmark):
    mbrs = [r.mbr() for r in theorem_33_counterexample()]
    holds = benchmark(verify_no_zero_overlap_grouping, mbrs, 4)
    assert holds
