"""Server throughput: QPS vs. worker count vs. client concurrency.

The serving claim behind :mod:`repro.server`: a packed, read-mostly
database scales query throughput with workers.  Searches are CPU-bound
pure Python, so the scaling sweep uses the **process** executor (the
thread pool is bounded by the GIL and is measured once for contrast).
The result cache is disabled throughout — every query must actually
walk the tree, otherwise replay masks the pool entirely.

Two sweeps, written to ``benchmarks/out/server_throughput.txt``:

1. QPS vs. workers (1 -> 2 -> 4) at fixed client concurrency;
2. QPS vs. concurrent clients at the largest worker count.

Smoke knobs (CI): ``REPRO_SERVER_BENCH_QUERIES`` (queries per client
per config), ``REPRO_DEMO_SCALE`` (database size multiplier).  The
monotonicity assertion (QPS non-decreasing from 1 to 4 workers) only
applies where it can physically hold — ``os.cpu_count() >= 2``; a
single-core box still runs and reports.
"""

from __future__ import annotations

import os
import random
import threading
import time

from repro.server.client import Client
from repro.server.server import PsqlServer, ServerConfig

OUT_PATH = os.path.join(os.path.dirname(__file__), "out",
                        "server_throughput.txt")

QUERIES_PER_CLIENT = int(os.environ.get("REPRO_SERVER_BENCH_QUERIES",
                                        "150"))
#: Minimum binary/text QPS ratio on the cached-read benchmark.  The
#: local default asserts the issue's 5x claim; CI smoke boxes are noisy
#: and merely assert binary is not slower (floor 1.0).
RATIO_FLOOR = float(os.environ.get("REPRO_SERVER_BENCH_RATIO_FLOOR",
                                   "5.0"))
WORKER_COUNTS = (1, 2, 4)
CLIENT_COUNTS = (1, 4, 8)
FIXED_CLIENTS = 8
BENCH_FACTORY = "repro.server.demo:bench_database"
#: Allowed backward noise between adjacent worker counts (QPS may dip
#: by at most this fraction and still count as non-decreasing).
SLACK = 0.10


def _query_mix(rng: random.Random, n: int) -> list[str]:
    """CPU-bound queries: varied windows + filters + one join flavour."""
    out = []
    for i in range(n):
        x = rng.uniform(150, 850)
        y = rng.uniform(150, 850)
        dx = rng.uniform(120, 320)
        dy = rng.uniform(120, 320)
        kind = i % 3
        if kind == 0:
            out.append(f"select city from cities on us-map "
                       f"at loc covered-by {{{x:.1f}+-{dx:.1f}, "
                       f"{y:.1f}+-{dy:.1f}}}")
        elif kind == 1:
            out.append(f"select city, population from cities on us-map "
                       f"at loc covered-by {{{x:.1f}+-{dx:.1f}, "
                       f"{y:.1f}+-{dy:.1f}}} "
                       f"where population > 250_000")
        else:
            out.append(f"select state from states on us-map "
                       f"at loc intersecting {{{x:.1f}+-{dx:.1f}, "
                       f"{y:.1f}+-{dy:.1f}}}")
    return out


def _drive(host: str, port: int, clients: int,
           queries_per_client: int, seed: int) -> tuple[float, int]:
    """Run the workload; returns (elapsed seconds, completed queries)."""
    errors: list[str] = []
    completed = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def client_main(idx: int) -> None:
        rng = random.Random(seed + idx)
        queries = _query_mix(rng, queries_per_client)
        try:
            with Client(host, port, timeout=120.0) as c:
                barrier.wait()
                for q in queries:
                    r = c.query(q)
                    if r.ok:
                        with lock:
                            completed[0] += 1
                    else:
                        with lock:
                            errors.append(f"{r.status}: "
                                          f"{r.error_message}")
        except Exception as exc:  # noqa: BLE001
            with lock:
                errors.append(f"{type(exc).__name__}: {exc}")
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    threads = [threading.Thread(target=client_main, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise AssertionError(f"bench clients failed: {errors[:3]}")
    return elapsed, completed[0]


def _measure(executor: str, workers: int, clients: int,
             queries_per_client: int) -> float:
    """QPS of one server configuration (cache disabled)."""
    config = ServerConfig(port=0, workers=workers, executor=executor,
                          cache_size=0, max_inflight=4 * max(clients, 1),
                          query_timeout=120.0,
                          factory_spec=BENCH_FACTORY)
    server = PsqlServer(config)
    host, port = server.start_background()
    try:
        # Warm up: spin up every pool worker before the timed section.
        _drive(host, port, clients, max(2 * workers // max(clients, 1), 2),
               seed=999)
        elapsed, completed = _drive(host, port, clients,
                                    queries_per_client, seed=1234)
        assert completed == clients * queries_per_client
        return completed / elapsed
    finally:
        server.stop_background()


def run_bench() -> dict:
    results: dict = {"workers": [], "clients": [], "thread_contrast": None}
    for w in WORKER_COUNTS:
        qps = _measure("process", w, FIXED_CLIENTS, QUERIES_PER_CLIENT)
        results["workers"].append((w, qps))
    for c in CLIENT_COUNTS:
        qps = _measure("process", WORKER_COUNTS[-1], c,
                       max(QUERIES_PER_CLIENT // 2, 20))
        results["clients"].append((c, qps))
    results["thread_contrast"] = _measure(
        "thread", WORKER_COUNTS[-1], FIXED_CLIENTS,
        max(QUERIES_PER_CLIENT // 2, 20))
    return results


def write_report(results: dict) -> str:
    cores = os.cpu_count() or 1
    lines = [
        "Server throughput (process executor, result cache disabled)",
        f"cores={cores} queries/client={QUERIES_PER_CLIENT} "
        f"db-scale={os.environ.get('REPRO_DEMO_SCALE', '2')}",
        "",
        f"QPS vs workers (clients={FIXED_CLIENTS}):",
    ]
    for w, qps in results["workers"]:
        lines.append(f"  workers={w:<2d}  qps={qps:8.1f}")
    lines.append("")
    lines.append(f"QPS vs clients (workers={WORKER_COUNTS[-1]}):")
    for c, qps in results["clients"]:
        lines.append(f"  clients={c:<2d}  qps={qps:8.1f}")
    lines.append("")
    note = ("GIL-bound; the gap to the process pool is the point"
            if cores >= 2 else
            "on one core the GIL costs nothing and process IPC "
            "dominates, so threads win")
    lines.append(f"thread-executor contrast (workers={WORKER_COUNTS[-1]}, "
                 f"clients={FIXED_CLIENTS}): "
                 f"qps={results['thread_contrast']:8.1f}  ({note})")
    report = "\n".join(lines) + "\n"
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        fh.write(report)
    return report


def _cached_read_mix(rng: random.Random, n: int) -> list[str]:
    """Row-heavy window queries for the cached-read protocol gate.

    Cached reads are where result *transport* dominates — the server
    replays memoized bytes, so nearly all per-request cost is framing
    and client-side decode, which scales with rows returned.  Wide
    windows make that cost visible; tiny-result queries would measure
    only the fixed dispatch floor both protocols share.
    """
    out = []
    for i in range(n):
        x = rng.uniform(350, 650)
        y = rng.uniform(350, 650)
        dx = rng.uniform(250, 450)
        dy = rng.uniform(250, 450)
        if i % 2:
            out.append(f"select city, state, population from cities "
                       f"on us-map at loc covered-by "
                       f"{{{x:.1f}+-{dx:.1f}, {y:.1f}+-{dy:.1f}}}")
        else:
            out.append(f"select city, population from cities on us-map "
                       f"at loc covered-by {{{x:.1f}+-{dx:.1f}, "
                       f"{y:.1f}+-{dy:.1f}}} "
                       f"where population > 100_000")
    return out


def _drive_cached(host: str, port: int, queries: list[str],
                  rounds: int, binary: bool) -> float:
    """QPS of one client replaying *queries* for *rounds* passes.

    Binary clients PREPARE each distinct query once and EXECUTE the
    handle thereafter; text clients resend the full QUERY line.  Both
    hit the server's result cache after the first pass, so this
    measures pure protocol + dispatch overhead per request.
    """
    with Client(host, port, timeout=120.0, binary=binary) as c:
        if binary:
            assert c.binary, "HELLO bin was not acknowledged"
            handles = [c.prepare(q) for q in queries]
            for stmt in handles:       # warm the cache
                assert c.execute(stmt).ok
            start = time.perf_counter()
            for _ in range(rounds):
                for stmt in handles:
                    assert c.execute(stmt).ok
        else:
            for q in queries:          # warm the cache
                assert c.query(q).ok
            start = time.perf_counter()
            for _ in range(rounds):
                for q in queries:
                    assert c.query(q).ok
        elapsed = time.perf_counter() - start
    return (rounds * len(queries)) / elapsed


def test_cached_read_protocols():
    """The zero-copy hot path gate: binary+prepared >= RATIO_FLOOR x
    text QPS on cached reads served by one thread-executor server."""
    rng = random.Random(7)
    queries = _cached_read_mix(rng, 12)
    # Cached hits are ~100us apiece: measure thousands of them, or the
    # ratio drowns in GIL/scheduler noise between the two threads.
    rounds = max(QUERIES_PER_CLIENT // len(queries), 5) * 20
    config = ServerConfig(port=0, workers=2, executor="thread",
                          cache_size=256, query_timeout=120.0,
                          factory_spec=BENCH_FACTORY)
    server = PsqlServer(config)
    host, port = server.start_background()
    try:
        text_qps = _drive_cached(host, port, queries, rounds,
                                 binary=False)
        binary_qps = _drive_cached(host, port, queries, rounds,
                                   binary=True)
    finally:
        server.stop_background()
    ratio = binary_qps / text_qps
    report = (f"cached reads: text={text_qps:8.1f} qps  "
              f"binary+prepared={binary_qps:8.1f} qps  "
              f"ratio={ratio:.2f}x (floor {RATIO_FLOOR:g}x)")
    print()
    print(report)
    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "a", encoding="utf-8") as fh:
        fh.write("\n" + report + "\n")
    assert ratio >= RATIO_FLOOR, (
        f"binary protocol only {ratio:.2f}x text on cached reads "
        f"(floor {RATIO_FLOOR:g}x): text={text_qps:.1f} "
        f"binary={binary_qps:.1f}")


def test_server_throughput():
    results = run_bench()
    print()
    print(write_report(results))
    qps_by_workers = [qps for _w, qps in results["workers"]]
    assert all(q > 0 for q in qps_by_workers)
    if (os.cpu_count() or 1) >= 2:
        # Monotone modulo noise: each step may lose at most SLACK, and
        # the whole 1 -> 4 sweep must actually gain.
        for prev, nxt in zip(qps_by_workers, qps_by_workers[1:]):
            assert nxt >= prev * (1 - SLACK), (
                f"QPS regressed adding workers: {qps_by_workers}")
        assert qps_by_workers[-1] > qps_by_workers[0], (
            f"no speedup from {WORKER_COUNTS[0]} -> {WORKER_COUNTS[-1]} "
            f"workers: {qps_by_workers}")


if __name__ == "__main__":
    test_server_throughput()
    test_cached_read_protocols()
