"""Advisor costs: capture overhead and what-if planning latency.

Two numbers gate the advisor's always-on posture:

- **capture overhead** — attaching a :class:`QueryLog` to a session
  switches execution into measure mode (per-node access counting) and
  adds one fingerprint + dict update per statement.  The acceptance bar
  (ISSUE 7): under 5% QPS loss versus the same loop with no log.
- **what-if latency** — ``advise()`` replans the whole captured
  workload once per candidate action.  Over a 50-query workload it must
  stay interactive (well under a second), since the server answers
  ``ADVISE`` inline on a worker thread.

Timing uses best-of-R over fixed statement batches (minimum is the
standard noise-robust estimator); the figures land in
``benchmarks/out/advisor_overhead.txt``.
"""

import time

import pytest

from repro.advisor import QueryLog, advise
from repro.advisor.smoke import build_degraded_database
from repro.psql.executor import Session

REPEATS = 7
MAX_CAPTURE_OVERHEAD = 1.05
MAX_ADVISE_SECONDS = 1.0
N_WHATIF_QUERIES = 50


@pytest.fixture(scope="module")
def db():
    return build_degraded_database()


@pytest.fixture(scope="module")
def statements():
    # The smoke workload shape: cheap window probes (plan/search bound,
    # worst case for per-statement bookkeeping) plus a few scans.
    probes = [f"select id from points on map at loc covered-by "
              f"{{{cx}+-8, {cy}+-8}}"
              for cx in (100, 300, 500, 700, 900)
              for cy in (100, 300, 500, 700, 900)]
    scans = ["select id from points where val > 900",
             "select id from points where val < 50"]
    return probes + scans


def best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def overhead(report, db, statements):
    plain = Session(db)
    logged = Session(db)
    logged.query_log = QueryLog()

    def run(session):
        for text in statements:
            session.execute(text)

    run(plain), run(logged)  # warm plan caches before timing
    t_plain = best_of(REPEATS, lambda: run(plain))
    t_logged = best_of(REPEATS, lambda: run(logged))
    ratio = t_logged / t_plain
    batch = len(statements)
    report("advisor_overhead", "\n".join([
        "Workload-capture overhead "
        f"(batch of {batch} statements, best of {REPEATS})",
        f"  no log   : {t_plain * 1e3:8.3f} ms "
        f"({batch / t_plain:8.0f} stmt/s)",
        f"  captured : {t_logged * 1e3:8.3f} ms "
        f"({batch / t_logged:8.0f} stmt/s)",
        f"  ratio    : {ratio:8.3f}x  (bar: {MAX_CAPTURE_OVERHEAD}x)",
    ]))
    return ratio


def test_capture_overhead_under_five_percent(overhead):
    assert overhead < MAX_CAPTURE_OVERHEAD


def test_capture_records_everything(db, statements):
    session = Session(db)
    session.query_log = QueryLog()
    for text in statements:
        session.execute(text)
    assert sum(e.calls for e in session.query_log.snapshot()) \
        == len(statements)


@pytest.fixture(scope="module")
def whatif_log(db):
    log = QueryLog()
    session = Session(db)
    session.query_log = log
    for i in range(N_WHATIF_QUERIES):
        lo = (i * 17) % 900
        session.execute(f"select id from points where val > {lo}")
    assert len(log) == N_WHATIF_QUERIES
    return log


def test_whatif_latency_over_fifty_queries(report, db, whatif_log):
    seconds = best_of(REPEATS,
                      lambda: advise(db, whatif_log,
                                     top=N_WHATIF_QUERIES))
    report("advisor_whatif_latency", "\n".join([
        f"What-if ADVISE latency ({N_WHATIF_QUERIES} captured queries, "
        f"best of {REPEATS})",
        f"  advise() : {seconds * 1e3:8.3f} ms "
        f"(bar: {MAX_ADVISE_SECONDS * 1e3:.0f} ms)",
    ]))
    assert seconds < MAX_ADVISE_SECONDS
    report_obj = advise(db, whatif_log, top=N_WHATIF_QUERIES)
    assert report_obj.recommendations  # the skew earns an index
