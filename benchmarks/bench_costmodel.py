"""E20 — validating the coverage-governs-cost thesis analytically.

Section 3.1 argues search efficiency "demands that both overlap and
coverage be minimized".  The Minkowski-sum cost model makes that claim
checkable without running queries: expected accesses are a pure function
of the node MBRs.  This benchmark tabulates estimate vs Monte-Carlo
measurement for packed and dynamic trees across window sizes.
"""

import pytest

from repro.geometry import Rect
from repro.rtree.costmodel import (
    expected_window_accesses,
    measured_window_accesses,
)
from repro.rtree.packing import pack
from repro.rtree.tree import RTree
from repro.workloads import TABLE1_UNIVERSE, uniform_points

N = 600
WINDOWS = (10.0, 50.0, 150.0)


@pytest.fixture(scope="module")
def trees():
    items = [(Rect.from_point(p), i)
             for i, p in enumerate(uniform_points(N, seed=33))]
    packed = pack(items, max_entries=4)
    dynamic = RTree(max_entries=4, split="linear")
    dynamic.insert_all(items)
    return packed, dynamic


@pytest.fixture(scope="module")
def table(report, trees):
    packed, dynamic = trees
    lines = [f"Cost model vs measurement (n={N}, fanout 4, "
             f"300 Monte-Carlo windows)",
             f"{'window':>7} | {'pack est':>8} {'pack meas':>9} | "
             f"{'ins est':>8} {'ins meas':>8}"]
    rows = {}
    for w in WINDOWS:
        pe = expected_window_accesses(packed, w, w,
                                      TABLE1_UNIVERSE).expected_accesses
        pm = measured_window_accesses(packed, w, w, TABLE1_UNIVERSE,
                                      samples=300, seed=1)
        de = expected_window_accesses(dynamic, w, w,
                                      TABLE1_UNIVERSE).expected_accesses
        dm = measured_window_accesses(dynamic, w, w, TABLE1_UNIVERSE,
                                      samples=300, seed=1)
        rows[w] = (pe, pm, de, dm)
        lines.append(f"{w:>7.0f} | {pe:>8.2f} {pm:>9.2f} | "
                     f"{de:>8.2f} {dm:>8.2f}")
    report("costmodel", "\n".join(lines))
    return rows


def test_model_tracks_measurement(table):
    for pe, pm, de, dm in table.values():
        assert pe == pytest.approx(pm, rel=0.3)
        assert de == pytest.approx(dm, rel=0.3)


def test_model_orders_trees_like_reality(table):
    for pe, pm, de, dm in table.values():
        assert (pe < de) == (pm < dm)


def test_estimator_speed(benchmark, trees):
    packed, _ = trees
    est = benchmark(expected_window_accesses, packed, 50, 50,
                    TABLE1_UNIVERSE)
    assert est.expected_accesses > 1
