"""E14 — ablation: Guttman split algorithms under dynamic INSERT.

The gap between INSERT and PACK in Table 1 depends on how good the
INSERT baseline's node splits are.  This ablation builds the same data
with exhaustive / quadratic / linear splits and measures every Table 1
column, quantifying how much of the paper's gap survives a strong
baseline.
"""

import pytest

from repro.geometry import Rect
from repro.rtree.metrics import tree_stats
from repro.rtree.packing import pack
from repro.rtree.tree import RTree
from repro.workloads import random_point_probes, uniform_points

N = 600
SPLITS = ("exhaustive", "quadratic", "linear", "rstar")


@pytest.fixture(scope="module")
def items():
    return [(Rect.from_point(p), i)
            for i, p in enumerate(uniform_points(N, seed=4))]


@pytest.fixture(scope="module")
def table(report, items):
    probes = random_point_probes(400, seed=5)
    lines = [f"Split ablation (n={N}, fanout 4, 400 probes)",
             f"{'builder':>16} | {'C':>9} {'O':>8} {'D':>2} {'N':>5} "
             f"{'A':>6}"]
    rows = {}
    for split in SPLITS:
        t = RTree(max_entries=4, split=split)
        t.insert_all(items)
        s = tree_stats(t, probes)
        rows[f"insert/{split}"] = s
        lines.append(f"{'insert/' + split:>16} | {s.coverage:>9.0f} "
                     f"{s.overlap_counted:>8.0f} {s.depth:>2} "
                     f"{s.node_count:>5} {s.avg_nodes_visited:>6.2f}")
    packed = pack(items, max_entries=4)
    s = tree_stats(packed, probes)
    rows["pack/nn"] = s
    lines.append(f"{'pack/nn':>16} | {s.coverage:>9.0f} "
                 f"{s.overlap_counted:>8.0f} {s.depth:>2} {s.node_count:>5} "
                 f"{s.avg_nodes_visited:>6.2f}")
    report("ablation_splits", "\n".join(lines))
    return rows


def test_split_quality_ordering(table):
    """Exhaustive <= quadratic <= linear in overlap, as Guttman found."""
    o = {name: s.overlap_counted for name, s in table.items()}
    assert o["insert/exhaustive"] <= o["insert/quadratic"] * 1.25
    assert o["insert/quadratic"] <= o["insert/linear"] * 1.25


def test_pack_beats_weakest_baseline(table):
    assert (table["pack/nn"].avg_nodes_visited
            <= table["insert/linear"].avg_nodes_visited)


def test_pack_minimal_nodes_regardless_of_baseline(table):
    for name, s in table.items():
        assert table["pack/nn"].node_count <= s.node_count


@pytest.mark.parametrize("split", SPLITS)
def test_insert_speed_by_split(benchmark, items, split):
    def build():
        t = RTree(max_entries=4, split=split)
        t.insert_all(items)
        return t

    tree = benchmark(build)
    assert len(tree) == N
