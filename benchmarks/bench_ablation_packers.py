"""E12 — ablation: PACK grouping strategies.

The paper packs by nearest neighbour and remarks that minimising the
group MBR directly "could be combinatorially explosive".  This ablation
compares the paper's NN pack (both distance metrics) with lowx, STR and
Hilbert packing on uniform and clustered data: coverage, overlap and
average query accesses.
"""

import pytest

from repro.geometry import Rect
from repro.rtree.metrics import tree_stats
from repro.rtree.packing import pack
from repro.workloads import (
    clustered_points,
    random_point_probes,
    uniform_points,
)

N = 1000
CONFIGS = [
    ("nn/center", dict(method="nn", distance="center")),
    ("nn/enlarge", dict(method="nn", distance="enlargement")),
    ("lowx", dict(method="lowx")),
    ("str", dict(method="str")),
    ("hilbert", dict(method="hilbert")),
]


def _items(points):
    return [(Rect.from_point(p), i) for i, p in enumerate(points)]


@pytest.fixture(scope="module")
def ablation_table(report):
    probes = random_point_probes(400, seed=3)
    datasets = {
        "uniform": _items(uniform_points(N, seed=2)),
        "clustered": _items(clustered_points(N, clusters=12, spread=25.0,
                                             seed=2)),
    }
    lines = [f"Packer ablation (n={N}, fanout 4, 400 point probes)",
             f"{'data':>10} {'packer':>11} | {'C':>9} {'O':>8} "
             f"{'D':>2} {'A':>6}"]
    results = {}
    for data_name, items in datasets.items():
        for packer_name, kwargs in CONFIGS:
            tree = pack(items, max_entries=4, **kwargs)
            s = tree_stats(tree, probes)
            results[(data_name, packer_name)] = s
            lines.append(
                f"{data_name:>10} {packer_name:>11} | {s.coverage:>9.0f} "
                f"{s.overlap_counted:>8.0f} {s.depth:>2} "
                f"{s.avg_nodes_visited:>6.2f}")
    report("ablation_packers", "\n".join(lines))
    return results


def test_all_packers_same_tree_shape(ablation_table):
    """Every packer produces the same (minimal) depth and node count."""
    depths = {s.depth for s in ablation_table.values()}
    assert len(depths) <= 2  # uniform vs clustered may differ, packers not


def test_nn_beats_lowx_on_clustered_data(ablation_table):
    nn = ablation_table[("clustered", "nn/center")]
    lowx = ablation_table[("clustered", "lowx")]
    assert nn.coverage < lowx.coverage


@pytest.mark.parametrize("packer,kwargs", CONFIGS,
                         ids=[c[0] for c in CONFIGS])
def test_pack_speed(benchmark, packer, kwargs):
    items = _items(uniform_points(N, seed=2))
    tree = benchmark(pack, items, 4, **kwargs)
    assert len(tree) == N
