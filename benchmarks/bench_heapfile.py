"""Substrate benchmark: slotted-page heap file and the row codec.

Not a paper artefact, but the tuple-storage layer every PSQL query
ultimately reads; tracked so substrate regressions are visible next to
the index numbers.
"""

import os

import pytest

from repro.geometry import Point
from repro.relational import Column
from repro.relational.persistent import PersistentRelation
from repro.relational.rowcodec import decode_row, encode_row
from repro.storage.heapfile import HeapFile

ROW = {"city": "Springfield", "state": "Avalon",
       "population": 450_000, "loc": Point(421.5, 310.25)}

SCHEMA = [Column("city", "str"), Column("state", "str"),
          Column("population", "int"), Column("loc", "point")]


def test_encode_row(benchmark):
    data = benchmark(encode_row, ROW)
    assert data


def test_decode_row(benchmark):
    data = encode_row(ROW)
    row = benchmark(decode_row, data)
    assert row == ROW


def test_heap_insert_1000(benchmark, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("heapbench")
    payload = encode_row(ROW)
    counter = [0]

    def insert_batch():
        path = os.path.join(str(tmp), f"h{counter[0]}.db")
        counter[0] += 1
        with HeapFile(path) as heap:
            for _ in range(1000):
                heap.insert(payload)

    benchmark.pedantic(insert_batch, rounds=3, iterations=1)


def test_heap_scan_1000(benchmark, tmp_path):
    payload = encode_row(ROW)
    with HeapFile(str(tmp_path / "scan.db")) as heap:
        for _ in range(1000):
            heap.insert(payload)
        count = benchmark(lambda: sum(1 for _ in heap.scan()))
        assert count == 1000


def test_persistent_relation_lookup(benchmark, tmp_path):
    with PersistentRelation("cities", SCHEMA,
                            str(tmp_path / "rel.db")) as rel:
        for i in range(500):
            rel.insert({"city": f"C{i}", "state": "Avalon",
                        "population": i, "loc": Point(float(i), 0.0)})
        rel.create_index("population")
        rows = benchmark(rel.lookup, "population", 250)
        assert len(rows) == 1
