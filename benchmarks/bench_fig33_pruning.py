"""E5 — Figure 3.3: overlap at the root defeats search pruning.

Measures the fraction of nodes a window search must visit in an
INSERT-built tree (whose root entries straddle the query) versus a
PACKed tree (whose root entries tile the space), over a sweep of window
selectivities.
"""

import pytest

from repro.experiments.figures import run_fig33_pruning
from repro.geometry import Rect
from repro.rtree.packing import pack
from repro.rtree.search import SearchStats, window_search
from repro.rtree.tree import RTree
from repro.workloads import uniform_points, windows_of_selectivity

N = 400


@pytest.fixture(scope="module")
def trees():
    pts = uniform_points(N, seed=5)
    items = [(Rect.from_point(p), i) for i, p in enumerate(pts)]
    dynamic = RTree(max_entries=4, split="linear")
    dynamic.insert_all(items)
    packed = pack(items, max_entries=4)
    return dynamic, packed


@pytest.fixture(scope="module")
def sweep(report, trees):
    dynamic, packed = trees
    lines = ["Figure 3.3 — visit fraction by window selectivity "
             f"(n={N}, fanout 4)",
             f"{'sel':>6} | {'insert':>8} | {'pack':>8}"]
    rows = []
    for sel in (0.001, 0.01, 0.05, 0.10, 0.25):
        acc_i = acc_p = 0.0
        windows = windows_of_selectivity(20, sel, seed=9)
        for w in windows:
            si, sp = SearchStats(), SearchStats()
            window_search(dynamic, w, si)
            window_search(packed, w, sp)
            acc_i += si.nodes_visited / dynamic.node_count
            acc_p += sp.nodes_visited / packed.node_count
        fi, fp = acc_i / len(windows), acc_p / len(windows)
        rows.append((sel, fi, fp))
        lines.append(f"{sel:>6.3f} | {fi:>8.2%} | {fp:>8.2%}")
    report("fig33_pruning", "\n".join(lines))
    return rows


def test_pack_prunes_better_at_every_selectivity(sweep):
    for _sel, insert_fraction, pack_fraction in sweep:
        assert pack_fraction <= insert_fraction * 1.05  # allow tiny noise


def test_headline_pruning_result(report):
    r = run_fig33_pruning()
    assert r.pack_visit_fraction < r.insert_visit_fraction


def test_window_search_insert(benchmark, trees):
    dynamic, _ = trees
    w = Rect(400, 400, 620, 620)
    benchmark(dynamic.search, w)


def test_window_search_pack(benchmark, trees):
    _, packed = trees
    w = Rect(400, 400, 620, 620)
    benchmark(packed.search, w)
