"""E10b — scaling of the synchronized R-tree join (juxtaposition engine).

Section 2.2 calls juxtaposition "simultaneous search on the two (or
more) spatial organizations".  This benchmark sweeps the relation sizes
and reports how many node pairs the lockstep descent visits versus the
full cross product — the pruning that makes geographic joins feasible.
"""

import pytest

from repro.geometry import Rect
from repro.geometry.predicates import covered_by
from repro.rtree.join import JoinStats, spatial_join
from repro.rtree.packing import pack
from repro.workloads import uniform_points, uniform_rects

SIZES = (100, 400, 1600)


def point_items(n, seed):
    return [(Rect.from_point(p), i)
            for i, p in enumerate(uniform_points(n, seed=seed))]


def rect_items(n, seed):
    return [(r, i) for i, r in
            enumerate(uniform_rects(n, max_side=60, seed=seed))]


@pytest.fixture(scope="module")
def sweep(report):
    lines = ["Spatial join scaling (points covered-by rectangles, "
             "packed trees, fanout 8)",
             f"{'n':>5} | {'results':>8} {'pairs':>8} {'pruned':>8} "
             f"{'cross':>10} {'visited%':>9}"]
    rows = {}
    for n in SIZES:
        left = pack(point_items(n, seed=n), max_entries=8)
        right = pack(rect_items(n // 2, seed=n + 1), max_entries=8)
        stats = JoinStats()
        results = spatial_join(left, right, covered_by, stats=stats)
        cross = left.node_count * right.node_count
        fraction = stats.pairs_visited / cross
        rows[n] = (len(results), stats.pairs_visited, stats.pairs_pruned,
                   cross, fraction)
        lines.append(f"{n:>5} | {len(results):>8} "
                     f"{stats.pairs_visited:>8} {stats.pairs_pruned:>8} "
                     f"{cross:>10} {fraction:>9.2%}")
    report("join_scaling", "\n".join(lines))
    return rows


def test_pruning_fraction_improves_with_size(sweep):
    """Bigger trees prune a larger share of the node cross product."""
    fractions = [sweep[n][4] for n in SIZES]
    assert fractions[-1] < fractions[0]
    assert all(f < 0.5 for f in fractions)


def test_join_results_nonempty(sweep):
    assert all(sweep[n][0] > 0 for n in SIZES)


@pytest.mark.parametrize("n", SIZES)
def test_join_speed(benchmark, n):
    left = pack(point_items(n, seed=n), max_entries=8)
    right = pack(rect_items(n // 2, seed=n + 1), max_entries=8)
    results = benchmark(spatial_join, left, right, covered_by)
    assert isinstance(results, list)


def test_brute_force_comparison_speed(benchmark):
    """The nested-loop alternative, for the speedup narrative."""
    left = point_items(400, seed=400)
    right = rect_items(200, seed=401)

    def nested_loop():
        return [(a, b) for ra, a in left for rb, b in right
                if covered_by(ra, rb)]

    results = benchmark(nested_loop)
    packed_left = pack(left, max_entries=8)
    packed_right = pack(right, max_entries=8)
    assert sorted(results) == sorted(
        spatial_join(packed_left, packed_right, covered_by))
