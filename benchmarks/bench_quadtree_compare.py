"""E17 — R-tree vs quadtree: object-level search vs reconstruction.

Section 1: R-trees "store full and non-atomic spatial objects" while
quad-trees "indiscriminately decompose the objects into lower level
pictorial primitives", so quadtree search needs "an elaborate
reconstruction process".  This experiment stores the same rectangles in
both structures and compares window-search accesses, raw answers and
the fragment blow-up.
"""

import pytest

from repro.geometry import Rect
from repro.quadtree import PointQuadtree, RegionQuadtree
from repro.rtree.packing import pack
from repro.rtree.search import SearchStats, window_search
from repro.workloads import (
    TABLE1_UNIVERSE,
    uniform_points,
    uniform_rects,
    windows_of_selectivity,
)

N = 1000


@pytest.fixture(scope="module")
def region_data():
    rects = [r for r in uniform_rects(N, max_side=40, seed=18)
             if r.area() > 0]
    return [(r, i) for i, r in enumerate(rects)]


@pytest.fixture(scope="module")
def comparison(report, region_data):
    rtree = pack(region_data, max_entries=4)
    qtree = RegionQuadtree(TABLE1_UNIVERSE, max_depth=6, bucket=4)
    for r, i in region_data:
        qtree.insert(r, i)

    windows = windows_of_selectivity(30, 0.02, seed=19)
    r_nodes = q_nodes = 0
    fragments_merged = objects_returned = 0
    for w in windows:
        stats = SearchStats()
        window_search(rtree, w, stats)
        r_nodes += stats.nodes_visited
        q_nodes += qtree.count_search_accesses(w)
        objs, frags = qtree.search_objects(w)
        objects_returned += len(objs)
        fragments_merged += frags
    lines = [
        f"R-tree vs region quadtree (n={len(region_data)} rectangles, "
        f"30 windows of 2% selectivity)",
        f"  R-tree:   {rtree.node_count} nodes, "
        f"{r_nodes / len(windows):.1f} accesses/query, returns objects "
        f"directly",
        f"  quadtree: {qtree.node_count()} nodes "
        f"({qtree.fragment_count} fragments for {len(region_data)} "
        f"objects), {q_nodes / len(windows):.1f} accesses/query",
        f"  reconstruction: {fragments_merged} fragments merged into "
        f"{objects_returned} objects "
        f"({fragments_merged / max(1, objects_returned):.2f} fragments "
        f"per object)",
    ]
    report("quadtree_compare", "\n".join(lines))
    return dict(rtree=rtree, qtree=qtree,
                frag_ratio=fragments_merged / max(1, objects_returned))


def test_quadtree_fragments_objects(comparison):
    """The decomposition blow-up the paper criticises is real."""
    qtree = comparison["qtree"]
    assert qtree.fragment_count > len(qtree)
    assert comparison["frag_ratio"] > 1.0


def test_answers_agree(comparison, region_data):
    window = Rect(300, 300, 500, 500)
    r_hits = sorted(comparison["rtree"].search(window))
    q_hits, _ = comparison["qtree"].search_objects(window)
    assert sorted(q_hits) == r_hits


def test_rtree_window_search(benchmark, region_data):
    tree = pack(region_data, max_entries=4)
    window = Rect(300, 300, 500, 500)
    benchmark(tree.search, window)


def test_quadtree_window_search(benchmark, region_data):
    qtree = RegionQuadtree(TABLE1_UNIVERSE, max_depth=6, bucket=4)
    for r, i in region_data:
        qtree.insert(r, i)
    window = Rect(300, 300, 500, 500)
    benchmark(qtree.search_objects, window)


def test_point_quadtree_vs_rtree_points(benchmark):
    pts = uniform_points(N, seed=20)
    qtree = PointQuadtree(TABLE1_UNIVERSE, bucket=4)
    for i, p in enumerate(pts):
        qtree.insert(p, i)
    window = Rect(300, 300, 500, 500)
    benchmark(qtree.search, window)
