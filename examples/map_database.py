"""A pictorial database session: the paper's Section 2 queries, end to end.

Run with::

    python examples/map_database.py [output-dir]

Builds the synthetic US map, loads it into the relational catalog with
packed R-tree picture indexes, and runs the paper's example queries:
direct spatial search with a population filter (Figure 2.1), and the
nested mapping that finds lakes inside Eastern states.  Pictorial output
is written as SVG files — the stand-in for the paper's graphics monitor.
"""

import sys

from repro.geometry import Rect
from repro.psql import Session
from repro.relational import Column, Database
from repro.viz import render_query_result
from repro.workloads import build_us_map


def load_database() -> tuple[Database, object]:
    """Create relations + pictures for the synthetic map."""
    the_map = build_us_map(seed=42)
    db = Database()

    cities = db.create_relation("cities", [
        Column("city", "str"), Column("state", "str"),
        Column("population", "int"), Column("loc", "point")])
    for c in the_map.cities:
        cities.insert({"city": c.name, "state": c.state,
                       "population": c.population, "loc": c.loc})
    cities.create_index("population")

    states = db.create_relation("states", [
        Column("state", "str"), Column("population-density", "float"),
        Column("loc", "region")])
    for s in the_map.states:
        states.insert({"state": s.name,
                       "population-density": s.population_density,
                       "loc": s.loc})

    lakes = db.create_relation("lakes", [
        Column("lake", "str"), Column("area", "float"),
        Column("volume", "float"), Column("loc", "region")])
    for l in the_map.lakes:
        lakes.insert({"lake": l.name, "area": l.area,
                      "volume": l.volume, "loc": l.loc})

    us_map = db.create_picture("us-map", the_map.universe)
    us_map.register(cities, "loc")
    us_map.register(states, "loc")
    lake_map = db.create_picture("lake-map", the_map.universe)
    lake_map.register(lakes, "loc")
    return db, the_map


def main(out_dir: str = ".") -> None:
    db, the_map = load_database()
    session = Session(db)

    # The paper's first example query (Section 2.2): cities in an area
    # with population above a threshold.  The {500±250, 500±250} window
    # plays the role of the paper's Eastern-US {4±4, 11±9}.
    query1 = """
        select city, state, population, loc
        from   cities
        on     us-map
        at     loc covered-by {500 ± 250, 500 ± 250}
        where  population > 450_000
    """
    result1 = session.execute(query1)
    print("Q1 — big cities in the central window")
    print(result1.format_table(max_rows=10))
    svg_path = f"{out_dir}/q1_cities.svg"
    render_query_result(result1, the_map.universe).save(svg_path)
    print(f"(pictorial output -> {svg_path})\n")

    # The nested mapping from Section 2.2: lakes covered by the boundary
    # of some Eastern state.
    query2 = """
        select lake, area, lakes.loc
        from   lakes
        on     lake-map
        at     lakes.loc covered-by
               select states.loc from states on us-map
               at states.loc covered-by {750 ± 250, 500 ± 500}
    """
    result2 = session.execute(query2)
    print("Q2 — lakes within Eastern states (nested mapping)")
    print(result2.format_table(max_rows=10))
    svg_path = f"{out_dir}/q2_lakes.svg"
    render_query_result(result2, the_map.universe).save(svg_path)
    print(f"(pictorial output -> {svg_path})\n")

    # A pictorial function in select and where: the paper's `area`.
    query3 = """
        select lake, area(loc), volume
        from   lakes
        where  area(loc) > 900 and volume > 10_000
    """
    result3 = session.execute(query3)
    print("Q3 — large, deep lakes via the area() pictorial function")
    print(result3.format_table(max_rows=10))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
