"""Juxtaposition: the paper's "geographic join" over two pictures.

Run with::

    python examples/spatial_join.py

Reproduces the Section 2.2 query that synthesises information from two
pictures — cities from the us-map and time zones from the time-zone-map —
by simultaneous search on both R-tree organizations, and shows the
underlying spatial-join statistics (node pairs visited vs pruned).
"""

from repro.geometry import Rect
from repro.psql import Session
from repro.relational import Column, Database
from repro.rtree.join import JoinStats, spatial_join
from repro.geometry.predicates import covered_by
from repro.workloads import build_us_map


def main() -> None:
    the_map = build_us_map(seed=42)
    db = Database()

    cities = db.create_relation("cities", [
        Column("city", "str"), Column("state", "str"),
        Column("population", "int"), Column("loc", "point")])
    for c in the_map.cities:
        cities.insert({"city": c.name, "state": c.state,
                       "population": c.population, "loc": c.loc})
    zones = db.create_relation("time-zones", [
        Column("zone", "str"), Column("hour-diff", "int"),
        Column("loc", "region")])
    for z in the_map.time_zones:
        zones.insert({"zone": z.zone, "hour-diff": z.hour_diff,
                      "loc": z.loc})

    us_map = db.create_picture("us-map", the_map.universe)
    city_tree = us_map.register(cities, "loc")
    zone_map = db.create_picture("time-zone-map", the_map.universe)
    zone_tree = zone_map.register(zones, "loc")

    # The paper's juxtaposition query, verbatim modulo window syntax.
    session = Session(db)
    result = session.execute("""
        select city, zone
        from   cities, time-zones
        on     us-map, time-zone-map
        at     cities.loc covered-by time-zones.loc
    """)
    print("cities juxtaposed with their time zone "
          f"({len(result)} pairs):")
    print(result.format_table(max_rows=12))

    # Under the hood this is a synchronized R-tree join; show the pruning
    # the paper's "simultaneous search" buys over the cross product.
    stats = JoinStats()
    spatial_join(city_tree, zone_tree, covered_by, stats=stats)
    cross = city_tree.node_count * zone_tree.node_count
    print(f"\njoin statistics: {stats.pairs_visited} node pairs visited, "
          f"{stats.pairs_pruned} pruned "
          f"(cross product would be {cross})")

    # Aggregate per zone, PSQL-side filter: populous cities per zone.
    big = session.execute("""
        select city, population, zone
        from   cities, time-zones
        on     us-map, time-zone-map
        at     cities.loc covered-by time-zones.loc
        where  population > 1_000_000
    """)
    per_zone: dict[str, int] = {}
    for _city, _pop, zone in big.rows:
        per_zone[zone] = per_zone.get(zone, 0) + 1
    print("\ncities over 1M by time zone:")
    for zone, count in sorted(per_zone.items()):
        print(f"  {zone:10s} {count}")


if __name__ == "__main__":
    main()
