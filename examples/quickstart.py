"""Quickstart: pack an R-tree and run direct spatial searches.

Run with::

    python examples/quickstart.py

Covers the library's core loop: generate spatial objects, bulk-load them
with the paper's PACK algorithm, query, and compare against a
dynamically built (Guttman INSERT) tree.
"""

from repro import Point, Rect, RTree, pack
from repro.rtree import SearchStats, knn_search, window_search
from repro.rtree.metrics import coverage, overlap
from repro.viz import ascii_rects
from repro.workloads import uniform_points


def main() -> None:
    # 1. Five hundred random points stand in for cities on a map.
    points = uniform_points(500, seed=42)
    items = [(Rect.from_point(p), idx) for idx, p in enumerate(points)]

    # 2. Bulk-load with PACK (Section 3.3 of the paper) ...
    packed = pack(items, max_entries=4, method="nn")

    # ... and build the same data dynamically with Guttman INSERT.
    dynamic = RTree(max_entries=4, split="linear")
    dynamic.insert_all(items)

    print("packed :", packed)
    print("dynamic:", dynamic)
    print(f"coverage  packed={coverage(packed):,.0f}  "
          f"dynamic={coverage(dynamic):,.0f}")
    print(f"overlap   packed={overlap(packed):,.0f}  "
          f"dynamic={overlap(dynamic):,.0f}")

    # 3. Direct spatial search: everything in a window.
    window = Rect.from_center(Point(500, 500), 100, 100)
    stats = SearchStats()
    hits = window_search(packed, window, stats)
    print(f"\nwindow {window} -> {len(hits)} objects "
          f"({stats.nodes_visited} of {packed.node_count} nodes visited)")

    # 4. The same search on the dynamic tree touches more nodes.
    stats_dyn = SearchStats()
    window_search(dynamic, window, stats_dyn)
    print(f"dynamic tree visited {stats_dyn.nodes_visited} of "
          f"{dynamic.node_count} nodes for the same answer")

    # 5. Nearest neighbours (the follow-up work to this paper).
    query = Point(321, 654)
    nearest = knn_search(packed, query, k=3)
    print(f"\n3 nearest objects to {query}:")
    for dist, oid in nearest:
        print(f"  object {oid} at distance {dist:.1f}")

    # 6. A terminal picture of the packed leaf MBRs.
    leaf_rects = [leaf.mbr() for leaf in packed.leaves()]
    print("\npacked leaf MBRs over the universe:")
    print(ascii_rects(leaf_rects[:40], Rect(0, 0, 1000, 1000),
                      cols=72, rows=20))


if __name__ == "__main__":
    main()
