"""A disk-resident packed R-tree with buffer-pool I/O accounting.

Run with::

    python examples/persistent_index.py

Demonstrates the storage substrate: bulk-load a spatial index onto
4 KiB pages, close it, reopen it cold and watch the buffer pool turn
repeated searches into memory hits — the "paging and disk I/O
buffering" advantage the paper claims for R-trees in Section 1.
"""

import os
import tempfile

from repro.geometry import Point, Rect
from repro.storage import DiskRTree
from repro.workloads import uniform_points


def main() -> None:
    points = uniform_points(5000, seed=7)
    items = [(Rect.from_point(p), i) for i, p in enumerate(points)]
    window = Rect.from_center(Point(500, 500), 60, 60)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "cities.rdb")

        # Build: PACK the objects straight onto pages.
        with DiskRTree(path, page_size=4096) as tree:
            print(f"page capacity -> branching factor {tree.max_entries}")
            tree.bulk_load(items, method="nn")
            print(f"bulk-loaded {len(tree)} objects: depth {tree.depth()}, "
                  f"{tree.node_count()} nodes, "
                  f"{tree.pager.page_count} pages on disk")

        size = os.path.getsize(path)
        print(f"index file: {size:,} bytes\n")

        # Reopen cold and measure I/O per query.
        with DiskRTree(path, buffer_capacity=32) as tree:
            reads0 = tree.pager.reads
            hits = tree.search(window)
            cold_reads = tree.pager.reads - reads0
            print(f"cold search: {len(hits)} hits, "
                  f"{cold_reads} physical page reads")

            reads1 = tree.pager.reads
            tree.search(window)
            warm_reads = tree.pager.reads - reads1
            print(f"warm search: {warm_reads} physical page reads "
                  f"(buffer pool hit rate "
                  f"{tree.pool.stats.hit_rate:.1%})")

            # The tree stays dynamic on disk: insert and search again.
            tree.insert(Rect(500, 500, 500, 500), 999_999)
            assert 999_999 in tree.search(window)
            print("\ninserted one object into the packed on-disk tree; "
                  "it is immediately searchable")


if __name__ == "__main__":
    main()
