"""A fully disk-resident pictorial archive.

Run with::

    python examples/pictorial_archive.py

The paper's target workload is a large, mostly static pictorial archive.
This example stores the synthetic map's relations in slotted-page heap
files, PACKs a page-resident R-tree over the city locations, closes
everything — then reopens the archive cold and answers a direct spatial
search, reporting exactly how many disk pages the whole operation
touched.
"""

import os
import tempfile

from repro.geometry import Point, Rect
from repro.relational import Column, PersistentRelation
from repro.storage import DiskRTree
from repro.workloads import build_us_map

CITY_SCHEMA = [Column("city", "str"), Column("state", "str"),
               Column("population", "int"), Column("loc", "point")]


def build_archive(directory: str) -> tuple[str, str]:
    """Write the map into heap files + a packed disk R-tree."""
    the_map = build_us_map(seed=42, cities_per_state=25)
    cities_path = os.path.join(directory, "cities.heap")
    index_path = os.path.join(directory, "cities.rtree")

    with PersistentRelation("cities", CITY_SCHEMA, cities_path) as cities:
        addresses = []
        for c in the_map.cities:
            addr = cities.insert({"city": c.name, "state": c.state,
                                  "population": c.population, "loc": c.loc})
            addresses.append((c.loc, addr))
        print(f"stored {len(cities)} city tuples in "
              f"{cities._heap.pager.page_count} heap pages")

        # The R-tree stores (MBR, heap address) pairs: the paper's
        # backward identifiers from picture space into tuples.  Heap
        # addresses are (page, slot); encode them into one integer.
        with DiskRTree(index_path, max_entries=32) as tree:
            items = [(Rect.from_point(loc), (addr.page << 16) | addr.slot)
                     for loc, addr in addresses]
            tree.bulk_load(items, method="nn")
            print(f"packed spatial index: {tree.node_count()} nodes on "
                  f"{tree.pager.page_count} pages, depth {tree.depth()}")
    return cities_path, index_path


def query_archive(cities_path: str, index_path: str) -> None:
    """Reopen cold and run a direct spatial search."""
    window = Rect.from_center(Point(500, 500), 150, 150)
    with PersistentRelation("cities", CITY_SCHEMA, cities_path) as cities, \
            DiskRTree(index_path, buffer_capacity=16) as tree:
        index_reads0 = tree.pager.reads
        heap_reads0 = cities._heap.pager.reads
        encoded = tree.search(window)
        rows = []
        for code in encoded:
            from repro.storage import RowAddress
            addr = RowAddress(page=code >> 16, slot=code & 0xFFFF)
            rows.append(cities.get(addr))
        index_reads = tree.pager.reads - index_reads0
        heap_reads = cities._heap.pager.reads - heap_reads0

        rows.sort(key=lambda r: -r["population"])
        print(f"\ndirect spatial search in {window}:")
        for row in rows[:8]:
            print(f"  {row['city']:<14} {row['state']:<10} "
                  f"pop {row['population']:>9,}")
        if len(rows) > 8:
            print(f"  ... and {len(rows) - 8} more")
        print(f"\nI/O: {index_reads} index page reads + "
              f"{heap_reads} heap page reads for {len(rows)} tuples")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cities_path, index_path = build_archive(tmp)
        query_archive(cities_path, index_path)


if __name__ == "__main__":
    main()
