"""Reproduce the paper's Table 1 at the command line.

Run with::

    python examples/packed_vs_dynamic.py [--full]

Builds Guttman-INSERT and PACK trees over identical uniform point sets
and prints coverage, overlap, depth, node count and average nodes
visited — the exact columns of the paper's Table 1 — with the paper's
own numbers interleaved for comparison.  ``--full`` runs all 17 J values
with 1000 queries (takes a minute); the default is a 6-row subset.
"""

import sys

from repro.experiments import format_table1, run_table1
from repro.workloads import TABLE1_J_VALUES


def main(full: bool = False) -> None:
    if full:
        j_values = TABLE1_J_VALUES
        queries = 1000
    else:
        j_values = (10, 50, 100, 300, 600, 900)
        queries = 300

    print("Reproducing Table 1 (INSERT baseline: Guttman linear split; "
          "PACK: nearest-neighbour)")
    print(f"J values: {j_values}; {queries} point queries per tree\n")
    rows = run_table1(j_values=j_values, queries=queries)
    print(format_table1(rows, include_paper=True))

    print("\nShape check at the largest J:")
    last = rows[-1]
    print(f"  depth:      pack {last.pack.depth} <= insert "
          f"{last.insert.depth}  "
          f"({'OK' if last.pack.depth <= last.insert.depth else 'DIVERGES'})")
    print(f"  node count: pack {last.pack.node_count} < insert "
          f"{last.insert.node_count}  "
          f"({'OK' if last.pack.node_count < last.insert.node_count else 'DIVERGES'})")
    print(f"  overlap:    pack {last.pack.overlap_counted:,.0f} vs insert "
          f"{last.insert.overlap_counted:,.0f}")
    print(f"  accesses:   pack {last.pack.avg_nodes_visited:.2f} vs insert "
          f"{last.insert.avg_nodes_visited:.2f}")


if __name__ == "__main__":
    main(full="--full" in sys.argv[1:])
